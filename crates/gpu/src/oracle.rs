//! The invariant oracle: machine-wide self-checks for the simulator.
//!
//! When enabled ([`Gpu::enable_invariant_oracle`]), the machine sweeps
//! these invariants after every scheduling event:
//!
//! 1. **Registration** — every waiter a policy tracks is registered in
//!    exactly one wait structure, and only while the WG is actually in a
//!    state that can receive a wake.
//! 2. **Superset property** — a waiter cached in the SyncMon must still
//!    hold its L2 monitored bit (a cleared bit means updates can no longer
//!    notify it), and *every* waiting WG must be reachable by some wake
//!    path: a policy registration, a pending token-valid wake or fallback
//!    timeout, or a wake that already landed (`woke`).
//! 3. **Wake delivery** — wakes are never delivered to running or
//!    descheduled WGs (recorded at the delivery site in the machine).
//! 4. **WG conservation** — the work-group population is conserved across
//!    preemption and migration: every WG sits in exactly one scheduler
//!    home (pending queue, ready queue, a CU's resident list, swapped-out
//!    waiting, or finished) and the queues agree with per-WG state.
//! 5. **Occupancy** — no CU ever holds more WGs than its Table 1 resource
//!    limits admit, and its free-resource counters exactly mirror the
//!    residents' demands.
//!
//! The sweep is read-only and allocation-light, but it runs per event:
//! leave it off for throughput experiments and on for the chaos matrix and
//! CI, where catching a corrupted schedule at the first bad event is worth
//! the slowdown.

use awg_sim::Cycle;

use crate::machine::{Event, Gpu};
use crate::policy::WaiterStructure;
use crate::wg::WgState;

/// Reusable generation-marked scratch buffers for the invariant sweep.
///
/// The sweep runs after *every* scheduling event when the oracle is on, so
/// per-sweep `HashMap`/`HashSet` allocations were the dominant cost of
/// every checked campaign. Each sweep bumps `gen` once; a per-WG cell
/// "contains" its mark iff it equals the current generation, which resets
/// every array in O(1) without touching memory.
#[derive(Debug, Default)]
pub(crate) struct OracleScratch {
    gen: u64,
    /// Queue-membership marks (`gen * 2 + queue_index`), so the pending
    /// and ready queues get independent duplicate detection per sweep.
    queue_mark: Vec<u64>,
    /// CU-placement marks plus the placing CU, for duplicate residency.
    placed_mark: Vec<u64>,
    placed_cu: Vec<u32>,
    /// Waiter-registration marks (duplicate registration detection).
    registered_mark: Vec<u64>,
    /// Waiters with no wake path *yet*: set while scanning WGs, cleared by
    /// the event-calendar scan when a pending token-valid rescue is found.
    rescue_mark: Vec<u64>,
}

impl OracleScratch {
    /// Starts a sweep over `n` WGs: bumps the generation and (once per
    /// machine size) grows the mark arrays.
    fn begin(&mut self, n: usize) -> u64 {
        self.gen += 1;
        if self.queue_mark.len() < n {
            self.queue_mark.resize(n, 0);
            self.placed_mark.resize(n, 0);
            self.placed_cu.resize(n, 0);
            self.registered_mark.resize(n, 0);
            self.rescue_mark.resize(n, 0);
        }
        self.gen
    }
}

/// Which machine-wide invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A WG is registered in more than one wait structure at once.
    DuplicateRegistration,
    /// A WG is registered although its state cannot receive a wake.
    StaleRegistration,
    /// A SyncMon-cached waiter's address lost its L2 monitored bit: updates
    /// can no longer notify it (the Bloom/monitored-bit superset property).
    MonitorSupersetHole,
    /// A waiting WG has no wake path at all — no registration, no pending
    /// wake or timeout for its current token, no landed wake.
    UnreachableWaiter,
    /// A wake was delivered to a WG that was not waiting.
    MisdeliveredWake,
    /// The WG population is not conserved: queues and per-WG states
    /// disagree, or the scheduler homes do not sum to the kernel size.
    WgAccounting,
    /// A CU's occupancy or resource counters violate its capacity limits.
    CuAccounting,
    /// A CU's resident list disagrees with per-WG state or placement.
    CuResidency,
}

/// One invariant violation, stamped with the cycle it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle of the scheduling event after which the sweep fired.
    pub at: Cycle,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable specifics (WG ids, addresses, counts).
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {:?}: {}", self.at, self.kind, self.detail)
    }
}

/// Whether a state occupies CU execution resources. This deliberately
/// includes `SwappingIn` (admitted before its context restore completes),
/// unlike [`WgState::is_resident`] which tracks context *ownership*.
fn holds_cu(state: WgState) -> bool {
    matches!(
        state,
        WgState::Dispatching
            | WgState::Running
            | WgState::Sleeping
            | WgState::Stalled
            | WgState::SwappingOut
            | WgState::SwappingIn
    )
}

impl Gpu {
    /// Sweeps every machine-wide invariant against the current state and
    /// returns the violations found (empty when the machine is sound).
    ///
    /// This is the read-only core of the oracle; with
    /// [`enable_invariant_oracle`](Gpu::enable_invariant_oracle) the
    /// machine runs it after every scheduling event and accumulates the
    /// findings in [`violations`](Gpu::violations).
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        let mut scratch = self.oracle_scratch.borrow_mut();
        self.check_invariants_with(&mut scratch)
    }

    /// The sweep body, working out of caller-owned scratch buffers. One
    /// fused pass over the WGs feeds every census-style count; membership
    /// sets are generation marks; the event-calendar scan for waiter
    /// reachability only runs when some waiter actually lacks a
    /// registration and a landed wake. The checks, their order, and their
    /// reported details are exactly the original allocating sweep's.
    pub(crate) fn check_invariants_with(
        &self,
        scratch: &mut OracleScratch,
    ) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let mut report = |kind: InvariantKind, detail: String| {
            out.push(InvariantViolation {
                at: self.now(),
                kind,
                detail,
            });
        };
        let gen = scratch.begin(self.wgs.len());

        // -- WG conservation: queues agree with states ---------------------
        // One scan computes the ground-truth census every later check reads
        // (deliberately *not* the machine's incremental `state_census`,
        // which is itself under test below).
        let mut counts = [0usize; WgState::ALL.len()];
        for w in &self.wgs {
            counts[w.state.census_index()] += 1;
        }
        let count_state = |s: WgState| counts[s.census_index()];
        let finished_states = count_state(WgState::Finished);
        if finished_states != self.finished {
            report(
                InvariantKind::WgAccounting,
                format!(
                    "finished counter {} but {} WGs in Finished state",
                    self.finished, finished_states
                ),
            );
        }
        for (qi, (queue, name, state)) in [
            (&self.pending, "pending", WgState::Pending),
            (&self.ready, "ready", WgState::ReadySwapped),
        ]
        .into_iter()
        .enumerate()
        {
            // Marks are `gen * 2 + qi`, so each queue gets its own
            // duplicate-detection set without a second generation bump.
            let mark = gen * 2 + qi as u64;
            let mut distinct = 0usize;
            for &wg in queue {
                if scratch.queue_mark[wg as usize] == mark {
                    report(
                        InvariantKind::WgAccounting,
                        format!("WG {wg} queued twice in the {name} queue"),
                    );
                } else {
                    scratch.queue_mark[wg as usize] = mark;
                    distinct += 1;
                }
                let actual = self.wgs[wg as usize].state;
                if actual != state {
                    report(
                        InvariantKind::WgAccounting,
                        format!("WG {wg} in the {name} queue but in state {actual:?}"),
                    );
                }
            }
            let in_state = count_state(state);
            if in_state != distinct {
                report(
                    InvariantKind::WgAccounting,
                    format!(
                        "{} WGs in state {state:?} but {} in the {name} queue",
                        in_state, distinct
                    ),
                );
            }
        }

        // -- CU residency and occupancy ------------------------------------
        let req = &self.kernel.resources;
        let mut placed_count = 0usize;
        for cu in &self.cus {
            for &wg in cu.resident() {
                let wgu = wg as usize;
                if scratch.placed_mark[wgu] == gen {
                    let prev = scratch.placed_cu[wgu] as usize;
                    report(
                        InvariantKind::CuResidency,
                        format!("WG {wg} resident on CU {prev} and CU {}", cu.id()),
                    );
                } else {
                    scratch.placed_mark[wgu] = gen;
                    placed_count += 1;
                }
                scratch.placed_cu[wgu] = cu.id() as u32;
                let w = &self.wgs[wg as usize];
                if w.cu != Some(cu.id()) {
                    report(
                        InvariantKind::CuResidency,
                        format!(
                            "WG {wg} resident on CU {} but its placement says {:?}",
                            cu.id(),
                            w.cu
                        ),
                    );
                }
                if !holds_cu(w.state) {
                    report(
                        InvariantKind::CuResidency,
                        format!(
                            "WG {wg} resident on CU {} in non-resident state {:?}",
                            cu.id(),
                            w.state
                        ),
                    );
                }
            }
            let n = cu.resident().len() as u32;
            if n > cu.max_occupancy(req) {
                report(
                    InvariantKind::CuAccounting,
                    format!(
                        "CU {} holds {n} WGs, above its occupancy limit {}",
                        cu.id(),
                        cu.max_occupancy(req)
                    ),
                );
            }
            let (cap_wf, cap_lds, cap_vgpr) = cu.capacity();
            let (free_wf, free_lds, free_vgpr) = cu.free_resources();
            let used = (
                n * req.wavefronts,
                n * req.lds_bytes,
                n * req.wavefronts * req.vgprs_per_wavefront,
            );
            if (free_wf + used.0, free_lds + used.1, free_vgpr + used.2)
                != (cap_wf, cap_lds, cap_vgpr)
            {
                report(
                    InvariantKind::CuAccounting,
                    format!(
                        "CU {} resource leak: {n} residents, free ({free_wf}, {free_lds}, \
                         {free_vgpr}) + demand {used:?} != capacity ({cap_wf}, {cap_lds}, \
                         {cap_vgpr})",
                        cu.id()
                    ),
                );
            }
        }
        for w in &self.wgs {
            if holds_cu(w.state) && scratch.placed_mark[w.id as usize] != gen {
                report(
                    InvariantKind::CuResidency,
                    format!("WG {} in state {:?} but resident on no CU", w.id, w.state),
                );
            }
        }

        // -- WG conservation: homes sum to the kernel size -----------------
        let swapped_waiting = count_state(WgState::SwappedWaiting);
        let homes = self.pending.len()
            + self.ready.len()
            + placed_count
            + swapped_waiting
            + finished_states;
        if homes as u64 != self.kernel.num_wgs {
            report(
                InvariantKind::WgAccounting,
                format!(
                    "{} pending + {} ready + {} resident + {swapped_waiting} swapped-waiting + \
                     {finished_states} finished != {} WGs",
                    self.pending.len(),
                    self.ready.len(),
                    placed_count,
                    self.kernel.num_wgs
                ),
            );
        }

        // -- Waiter registrations ------------------------------------------
        let registry = self.policy.waiter_registry();
        for (wg, rec) in &registry {
            if scratch.registered_mark[*wg as usize] == gen {
                report(
                    InvariantKind::DuplicateRegistration,
                    format!("WG {wg} registered in more than one wait structure"),
                );
                continue;
            }
            scratch.registered_mark[*wg as usize] = gen;
            let state = self.wgs[*wg as usize].state;
            if matches!(
                state,
                WgState::Pending | WgState::ReadySwapped | WgState::Finished
            ) {
                report(
                    InvariantKind::StaleRegistration,
                    format!(
                        "WG {wg} registered ({:?}) but in state {state:?}",
                        rec.structure
                    ),
                );
            }
            if rec.structure == WaiterStructure::SyncMon && !self.l2.is_monitored(rec.cond.addr) {
                report(
                    InvariantKind::MonitorSupersetHole,
                    format!(
                        "WG {wg} cached in the SyncMon for {:#x} but the monitored bit is clear",
                        rec.cond.addr
                    ),
                );
            }
        }

        // -- Reachability: every waiter has some wake path -----------------
        // Collect the waiters with no registration and no landed wake; the
        // event-calendar scan (the only O(events) step left) runs only when
        // such a waiter exists, which on a sound machine is the rare case.
        let mut needy = 0usize;
        for w in &self.wgs {
            if matches!(w.state, WgState::Stalled | WgState::SwappedWaiting)
                && !w.woke
                && scratch.registered_mark[w.id as usize] != gen
            {
                scratch.rescue_mark[w.id as usize] = gen;
                needy += 1;
            }
        }
        if needy > 0 {
            for (_, ev) in self.events.iter() {
                if let Event::WakeDeliver(wg, token) | Event::WaitTimeout(wg, token) = *ev {
                    let wgu = wg as usize;
                    if scratch.rescue_mark[wgu] == gen && self.wgs[wgu].token == token {
                        scratch.rescue_mark[wgu] = 0;
                    }
                }
            }
            for w in &self.wgs {
                if scratch.rescue_mark[w.id as usize] != gen {
                    continue;
                }
                report(
                    InvariantKind::UnreachableWaiter,
                    format!(
                        "WG {} waiting in state {:?} on {:?} with no registration, no pending \
                         wake or timeout, and no landed wake",
                        w.id, w.state, w.cond
                    ),
                );
            }
        }

        // -- SoA census cross-check ----------------------------------------
        // The machine maintains `state_census` incrementally so hot paths
        // can count states in O(1); verify it against the ground-truth scan
        // above. Appended last so sound machines emit the original checks'
        // output byte-for-byte.
        if self.state_census != counts {
            report(
                InvariantKind::WgAccounting,
                format!(
                    "incremental state census {:?} disagrees with per-WG scan {:?}",
                    self.state_census, counts
                ),
            );
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Kernel;
    use crate::config::WgResources;
    use crate::policy::{BusyWaitPolicy, SyncCond};
    use crate::GpuConfig;
    use awg_isa::ProgramBuilder;

    fn mini_gpu(num_wgs: u64) -> Gpu {
        let mut b = ProgramBuilder::new("oracle");
        b.compute(50);
        b.halt();
        let kernel = Kernel::new(b.build().unwrap(), num_wgs, WgResources::default());
        Gpu::new(
            GpuConfig::isca2020_baseline(),
            kernel,
            Box::new(BusyWaitPolicy::new()),
        )
    }

    #[test]
    fn clean_run_has_no_violations() {
        let mut gpu = mini_gpu(4);
        gpu.enable_invariant_oracle();
        let outcome = gpu.run();
        assert!(outcome.is_completed(), "{outcome:?}");
        assert!(gpu.violations().is_empty(), "{:?}", gpu.violations());
    }

    #[test]
    fn tampered_waiter_is_unreachable() {
        let mut gpu = mini_gpu(2);
        assert!(gpu.run().is_completed());
        // Forge a waiter the scheduler has forgotten about: stalled, with a
        // condition, but no registration, event, or landed wake.
        gpu.wgs[0].state = WgState::Stalled;
        gpu.wgs[0].cond = Some(SyncCond {
            addr: 4096,
            expected: 1,
        });
        let kinds: Vec<InvariantKind> = gpu.check_invariants().iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&InvariantKind::UnreachableWaiter),
            "{kinds:?}"
        );
        assert!(kinds.contains(&InvariantKind::WgAccounting), "{kinds:?}");
    }

    #[test]
    fn tampered_residency_is_caught() {
        let mut gpu = mini_gpu(2);
        assert!(gpu.run().is_completed());
        // Re-admit a finished WG behind the scheduler's back.
        let req = gpu.kernel.resources;
        gpu.cus[0].admit(0, &req);
        let kinds: Vec<InvariantKind> = gpu.check_invariants().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&InvariantKind::CuResidency), "{kinds:?}");
    }

    #[test]
    fn violation_renders_with_cycle_and_kind() {
        let v = InvariantViolation {
            at: 7,
            kind: InvariantKind::CuAccounting,
            detail: "CU 0 resource leak".into(),
        };
        let text = v.to_string();
        assert!(text.contains("cycle 7"), "{text}");
        assert!(text.contains("CuAccounting"), "{text}");
    }
}
