//! Optional event tracing (used to regenerate the Fig 6 policy timelines
//! and to feed the Chrome-Trace-Format timeline exporter).

use std::collections::VecDeque;

use awg_sim::{CodecError, Cycle, Dec, Enc};

use crate::wg::WgId;

/// A traced scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// WG dispatched onto a CU.
    Dispatch {
        /// Target CU.
        cu: usize,
    },
    /// Atomic issued (dynamic atomic instruction).
    AtomicIssue {
        /// Target address.
        addr: u64,
    },
    /// Atomic completed at the shared point of coherence.
    AtomicDone {
        /// Target address.
        addr: u64,
    },
    /// Synchronization check failed.
    SyncFail {
        /// The sync variable.
        addr: u64,
        /// The value waited for.
        expected: i64,
    },
    /// WG began stalling while resident.
    Stall,
    /// WG began sleeping (`s_sleep` / fixed stall interval).
    Sleep {
        /// Sleep duration.
        cycles: Cycle,
    },
    /// Context switch out started.
    SwapOutStart,
    /// Context switch out finished; resources released.
    SwapOutDone,
    /// Context switch in started.
    SwapInStart {
        /// Destination CU.
        cu: usize,
    },
    /// WG resumed execution.
    Resume,
    /// WG's fallback timeout fired.
    Timeout,
    /// WG halted.
    Finish,
}

impl TraceEvent {
    /// Whether this event is a *schedule* event — a dispatch, context
    /// switch, resume, timeout, or finish — as opposed to per-instruction
    /// noise (atomics, sync polls, stalls, sleeps).
    pub fn is_schedule(&self) -> bool {
        matches!(
            self,
            TraceEvent::Dispatch { .. }
                | TraceEvent::SwapOutStart
                | TraceEvent::SwapOutDone
                | TraceEvent::SwapInStart { .. }
                | TraceEvent::Resume
                | TraceEvent::Timeout
                | TraceEvent::Finish
        )
    }
}

/// What a [`Trace`] retains.
///
/// The conformance lab's progress-model predicates only consume scheduling
/// events, but a deadlocked busy-wait run emits millions of per-instruction
/// atomic records before the quiescence detector fires — [`Schedule`]
/// filters those at record time, keeping adversary runs at a few hundred
/// records without a lossy ring bound.
///
/// [`Schedule`]: TraceFilter::Schedule
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFilter {
    /// Keep every event (the timeline exporter needs the full stream).
    #[default]
    All,
    /// Keep only events for which [`TraceEvent::is_schedule`] holds.
    Schedule,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle of the event.
    pub cycle: Cycle,
    /// WG involved.
    pub wg: WgId,
    /// What happened.
    pub event: TraceEvent,
}

/// A trace buffer, optionally bounded as a ring.
///
/// With a capacity set, the buffer keeps only the newest records and counts
/// what it evicted, so long chaos runs with tracing enabled cannot grow
/// memory without limit.
#[derive(Debug, Default)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    enabled: bool,
    capacity: Option<usize>,
    filter: TraceFilter,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled (zero-overhead) trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bounds the buffer to the newest `capacity` records (`None` restores
    /// the unbounded default). Excess oldest records are evicted
    /// immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.evict();
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Selects which events [`Trace::record`] retains. Already-recorded
    /// records are kept; the filter applies from now on.
    pub fn set_filter(&mut self, filter: TraceFilter) {
        self.filter = filter;
    }

    /// The active record filter.
    pub fn filter(&self) -> TraceFilter {
        self.filter
    }

    /// Number of records evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn evict(&mut self) {
        if let Some(cap) = self.capacity {
            while self.records.len() > cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Records an event when enabled.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, wg: WgId, event: TraceEvent) {
        if self.enabled {
            if self.filter == TraceFilter::Schedule && !event.is_schedule() {
                return;
            }
            self.records.push_back(TraceRecord { cycle, wg, event });
            if let Some(cap) = self.capacity {
                if self.records.len() > cap {
                    self.records.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Copies the retained records out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().copied().collect()
    }

    /// Serializes the retained records and eviction count for checkpoints.
    /// The enabled flag and ring bound come from instrumentation flags, so
    /// [`Trace::load`] overlays onto an identically-configured trace.
    pub fn save(&self, enc: &mut Enc) {
        enc.u64(self.dropped);
        enc.usize(self.records.len());
        for r in &self.records {
            enc.u64(r.cycle);
            enc.u32(r.wg);
            match r.event {
                TraceEvent::Dispatch { cu } => {
                    enc.u8(0);
                    enc.usize(cu);
                }
                TraceEvent::AtomicIssue { addr } => {
                    enc.u8(1);
                    enc.u64(addr);
                }
                TraceEvent::AtomicDone { addr } => {
                    enc.u8(2);
                    enc.u64(addr);
                }
                TraceEvent::SyncFail { addr, expected } => {
                    enc.u8(3);
                    enc.u64(addr);
                    enc.i64(expected);
                }
                TraceEvent::Stall => enc.u8(4),
                TraceEvent::Sleep { cycles } => {
                    enc.u8(5);
                    enc.u64(cycles);
                }
                TraceEvent::SwapOutStart => enc.u8(6),
                TraceEvent::SwapOutDone => enc.u8(7),
                TraceEvent::SwapInStart { cu } => {
                    enc.u8(8);
                    enc.usize(cu);
                }
                TraceEvent::Resume => enc.u8(9),
                TraceEvent::Timeout => enc.u8(10),
                TraceEvent::Finish => enc.u8(11),
            }
        }
    }

    /// Overlays records written by [`Trace::save`].
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.dropped = dec.u64()?;
        let n = dec.count(13)?;
        self.records.clear();
        self.records.reserve(n);
        for _ in 0..n {
            let cycle = dec.u64()?;
            let wg = dec.u32()?;
            let event = match dec.u8()? {
                0 => TraceEvent::Dispatch { cu: dec.usize()? },
                1 => TraceEvent::AtomicIssue { addr: dec.u64()? },
                2 => TraceEvent::AtomicDone { addr: dec.u64()? },
                3 => TraceEvent::SyncFail {
                    addr: dec.u64()?,
                    expected: dec.i64()?,
                },
                4 => TraceEvent::Stall,
                5 => TraceEvent::Sleep { cycles: dec.u64()? },
                6 => TraceEvent::SwapOutStart,
                7 => TraceEvent::SwapOutDone,
                8 => TraceEvent::SwapInStart { cu: dec.usize()? },
                9 => TraceEvent::Resume,
                10 => TraceEvent::Timeout,
                11 => TraceEvent::Finish,
                t => return Err(CodecError::Invalid(format!("bad trace event tag {t}"))),
            };
            self.records.push_back(TraceRecord { cycle, wg, event });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_filter_drops_instruction_noise() {
        let mut t = Trace::new();
        t.enable();
        t.set_filter(TraceFilter::Schedule);
        t.record(1, 0, TraceEvent::AtomicIssue { addr: 64 });
        t.record(
            2,
            0,
            TraceEvent::SyncFail {
                addr: 64,
                expected: 1,
            },
        );
        t.record(3, 0, TraceEvent::Stall);
        t.record(4, 0, TraceEvent::Sleep { cycles: 100 });
        t.record(5, 0, TraceEvent::SwapOutStart);
        t.record(6, 0, TraceEvent::SwapOutDone);
        t.record(7, 0, TraceEvent::Dispatch { cu: 0 });
        t.record(8, 0, TraceEvent::Resume);
        t.record(9, 0, TraceEvent::Finish);
        let kept: Vec<_> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(kept, vec![5, 6, 7, 8, 9]);
        // Filtered events are not "dropped" — that counter is the ring's.
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(5, 0, TraceEvent::Stall);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_appends() {
        let mut t = Trace::new();
        t.enable();
        t.record(5, 0, TraceEvent::Stall);
        t.record(9, 1, TraceEvent::Resume);
        let records = t.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].cycle, 9);
        assert_eq!(records[1].event, TraceEvent::Resume);
    }

    #[test]
    fn ring_bound_keeps_newest_records() {
        let mut t = Trace::new();
        t.enable();
        t.set_capacity(Some(3));
        for cycle in 0..10 {
            t.record(cycle, 0, TraceEvent::Stall);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let cycles: Vec<_> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut t = Trace::new();
        t.enable();
        for cycle in 0..5 {
            t.record(cycle, 0, TraceEvent::Resume);
        }
        t.set_capacity(Some(2));
        let cycles: Vec<_> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
        assert_eq!(t.dropped(), 3);
        // Restoring unbounded keeps what remains.
        t.set_capacity(None);
        assert_eq!(t.len(), 2);
    }
}
