//! Optional event tracing (used to regenerate the Fig 6 policy timelines
//! and to feed the Chrome-Trace-Format timeline exporter).

use std::collections::VecDeque;

use awg_sim::Cycle;

use crate::wg::WgId;

/// A traced scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// WG dispatched onto a CU.
    Dispatch {
        /// Target CU.
        cu: usize,
    },
    /// Atomic issued (dynamic atomic instruction).
    AtomicIssue {
        /// Target address.
        addr: u64,
    },
    /// Atomic completed at the shared point of coherence.
    AtomicDone {
        /// Target address.
        addr: u64,
    },
    /// Synchronization check failed.
    SyncFail {
        /// The sync variable.
        addr: u64,
        /// The value waited for.
        expected: i64,
    },
    /// WG began stalling while resident.
    Stall,
    /// WG began sleeping (`s_sleep` / fixed stall interval).
    Sleep {
        /// Sleep duration.
        cycles: Cycle,
    },
    /// Context switch out started.
    SwapOutStart,
    /// Context switch out finished; resources released.
    SwapOutDone,
    /// Context switch in started.
    SwapInStart {
        /// Destination CU.
        cu: usize,
    },
    /// WG resumed execution.
    Resume,
    /// WG's fallback timeout fired.
    Timeout,
    /// WG halted.
    Finish,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle of the event.
    pub cycle: Cycle,
    /// WG involved.
    pub wg: WgId,
    /// What happened.
    pub event: TraceEvent,
}

/// A trace buffer, optionally bounded as a ring.
///
/// With a capacity set, the buffer keeps only the newest records and counts
/// what it evicted, so long chaos runs with tracing enabled cannot grow
/// memory without limit.
#[derive(Debug, Default)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    enabled: bool,
    capacity: Option<usize>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled (zero-overhead) trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bounds the buffer to the newest `capacity` records (`None` restores
    /// the unbounded default). Excess oldest records are evicted
    /// immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        self.evict();
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of records evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn evict(&mut self) {
        if let Some(cap) = self.capacity {
            while self.records.len() > cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
    }

    /// Records an event when enabled.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, wg: WgId, event: TraceEvent) {
        if self.enabled {
            self.records.push_back(TraceRecord { cycle, wg, event });
            if let Some(cap) = self.capacity {
                if self.records.len() > cap {
                    self.records.pop_front();
                    self.dropped += 1;
                }
            }
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Copies the retained records out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(5, 0, TraceEvent::Stall);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_appends() {
        let mut t = Trace::new();
        t.enable();
        t.record(5, 0, TraceEvent::Stall);
        t.record(9, 1, TraceEvent::Resume);
        let records = t.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].cycle, 9);
        assert_eq!(records[1].event, TraceEvent::Resume);
    }

    #[test]
    fn ring_bound_keeps_newest_records() {
        let mut t = Trace::new();
        t.enable();
        t.set_capacity(Some(3));
        for cycle in 0..10 {
            t.record(cycle, 0, TraceEvent::Stall);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let cycles: Vec<_> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut t = Trace::new();
        t.enable();
        for cycle in 0..5 {
            t.record(cycle, 0, TraceEvent::Resume);
        }
        t.set_capacity(Some(2));
        let cycles: Vec<_> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
        assert_eq!(t.dropped(), 3);
        // Restoring unbounded keeps what remains.
        t.set_capacity(None);
        assert_eq!(t.len(), 2);
    }
}
