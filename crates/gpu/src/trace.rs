//! Optional event tracing (used to regenerate the Fig 6 policy timelines).

use awg_sim::Cycle;

use crate::wg::WgId;

/// A traced scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// WG dispatched onto a CU.
    Dispatch {
        /// Target CU.
        cu: usize,
    },
    /// Atomic issued (dynamic atomic instruction).
    AtomicIssue {
        /// Target address.
        addr: u64,
    },
    /// Synchronization check failed.
    SyncFail {
        /// The sync variable.
        addr: u64,
        /// The value waited for.
        expected: i64,
    },
    /// WG began stalling while resident.
    Stall,
    /// WG began sleeping (`s_sleep` / fixed stall interval).
    Sleep {
        /// Sleep duration.
        cycles: Cycle,
    },
    /// Context switch out started.
    SwapOutStart,
    /// Context switch out finished; resources released.
    SwapOutDone,
    /// Context switch in started.
    SwapInStart,
    /// WG resumed execution.
    Resume,
    /// WG's fallback timeout fired.
    Timeout,
    /// WG halted.
    Finish,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle of the event.
    pub cycle: Cycle,
    /// WG involved.
    pub wg: WgId,
    /// What happened.
    pub event: TraceEvent,
}

/// An append-only trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled (zero-overhead) trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event when enabled.
    #[inline]
    pub fn record(&mut self, cycle: Cycle, wg: WgId, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { cycle, wg, event });
        }
    }

    /// All records in chronological order of recording.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(5, 0, TraceEvent::Stall);
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_appends() {
        let mut t = Trace::new();
        t.enable();
        t.record(5, 0, TraceEvent::Stall);
        t.record(9, 1, TraceEvent::Resume);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.records()[1].cycle, 9);
        assert_eq!(t.records()[1].event, TraceEvent::Resume);
    }
}
