//! Compute-unit resource accounting.
//!
//! A CU accepts WGs while it has free wavefront slots, LDS, and VGPRs —
//! exactly the dispatch rule the paper relies on (§II.D: "WGs within a
//! kernel are sequentially dispatched until execution resources … and memory
//! resources … are saturated").

use awg_mem::{Cache, CacheConfig};
use awg_sim::{CodecError, Dec, Enc};

use crate::config::{GpuConfig, WgResources};
use crate::wg::WgId;

/// One compute unit: occupancy bookkeeping plus its private L1.
#[derive(Debug)]
pub struct Cu {
    id: usize,
    wf_slots: u32,
    lds_bytes: u32,
    vgprs: u32,
    free_wf: u32,
    free_lds: u32,
    free_vgprs: u32,
    resident: Vec<WgId>,
    enabled: bool,
    l1: Cache,
}

impl Cu {
    /// Creates an idle, enabled CU per `config`.
    pub fn new(id: usize, config: &GpuConfig) -> Self {
        let wf = config.wf_slots_per_cu();
        let lds = config.lds_per_cu;
        let vgprs = config.vgprs_per_cu();
        Cu {
            id,
            wf_slots: wf,
            lds_bytes: lds,
            vgprs,
            free_wf: wf,
            free_lds: lds,
            free_vgprs: vgprs,
            resident: Vec::new(),
            enabled: true,
            l1: Cache::new(config.l1),
        }
    }

    /// The CU's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the CU currently accepts work (disabled by the resource-loss
    /// experiment).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Disables the CU (the §VI oversubscription event). Resident WGs must
    /// be preempted by the caller.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables the CU.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether a WG with requirements `req` fits right now.
    pub fn fits(&self, req: &WgResources) -> bool {
        self.enabled
            && self.free_wf >= req.wavefronts
            && self.free_lds >= req.lds_bytes
            && self.free_vgprs >= req.wavefronts * req.vgprs_per_wavefront
    }

    /// Reserves resources for `wg`.
    ///
    /// # Panics
    ///
    /// Panics if the WG does not fit (callers must check [`Cu::fits`]).
    pub fn admit(&mut self, wg: WgId, req: &WgResources) {
        assert!(self.fits(req), "CU {} cannot admit WG {}", self.id, wg);
        self.free_wf -= req.wavefronts;
        self.free_lds -= req.lds_bytes;
        self.free_vgprs -= req.wavefronts * req.vgprs_per_wavefront;
        self.resident.push(wg);
    }

    /// Releases the resources of `wg`.
    ///
    /// # Panics
    ///
    /// Panics if `wg` is not resident.
    pub fn release(&mut self, wg: WgId, req: &WgResources) {
        let pos = self
            .resident
            .iter()
            .position(|&w| w == wg)
            .unwrap_or_else(|| panic!("WG {} not resident on CU {}", wg, self.id));
        self.resident.swap_remove(pos);
        self.free_wf += req.wavefronts;
        self.free_lds += req.lds_bytes;
        self.free_vgprs += req.wavefronts * req.vgprs_per_wavefront;
        debug_assert!(self.free_wf <= self.wf_slots);
        debug_assert!(self.free_lds <= self.lds_bytes);
        debug_assert!(self.free_vgprs <= self.vgprs);
    }

    /// WGs currently resident, in admission order (mutations may reorder).
    pub fn resident(&self) -> &[WgId] {
        &self.resident
    }

    /// Number of WGs currently resident (the telemetry occupancy metric).
    pub fn occupancy(&self) -> u32 {
        self.resident.len() as u32
    }

    /// Maximum number of WGs with requirements `req` this CU can hold.
    pub fn max_occupancy(&self, req: &WgResources) -> u32 {
        let by_wf = self.wf_slots / req.wavefronts.max(1);
        let by_lds = self
            .lds_bytes
            .checked_div(req.lds_bytes)
            .unwrap_or(u32::MAX);
        let vg = req.wavefronts * req.vgprs_per_wavefront;
        let by_vgpr = self.vgprs.checked_div(vg).unwrap_or(u32::MAX);
        by_wf.min(by_lds).min(by_vgpr)
    }

    /// Total `(wavefront slots, LDS bytes, VGPRs)` capacity (Table 1).
    pub fn capacity(&self) -> (u32, u32, u32) {
        (self.wf_slots, self.lds_bytes, self.vgprs)
    }

    /// Currently free `(wavefront slots, LDS bytes, VGPRs)`.
    ///
    /// The invariant oracle cross-checks these against the resident list:
    /// the resources the residents demand plus the free amounts must equal
    /// the capacity exactly, or admission/release bookkeeping has leaked.
    pub fn free_resources(&self) -> (u32, u32, u32) {
        (self.free_wf, self.free_lds, self.free_vgprs)
    }

    /// The CU's private L1 cache.
    pub fn l1_mut(&mut self) -> &mut Cache {
        &mut self.l1
    }

    /// L1 latency in cycles.
    pub fn l1_latency(&self) -> u64 {
        self.l1.config().latency
    }

    /// L1 config (for tests).
    pub fn l1_config(&self) -> &CacheConfig {
        self.l1.config()
    }

    /// Serializes the CU's mutable state: free-resource counters, the
    /// resident list (order preserved verbatim — `release` uses
    /// `swap_remove`, so the order is load-bearing), the enabled flag, and
    /// the private L1. Capacities are configuration, not state.
    pub fn save(&self, enc: &mut Enc) {
        enc.u32(self.free_wf);
        enc.u32(self.free_lds);
        enc.u32(self.free_vgprs);
        enc.usize(self.resident.len());
        for &wg in &self.resident {
            enc.u32(wg);
        }
        enc.bool(self.enabled);
        self.l1.save(enc);
    }

    /// Overlays state written by [`Cu::save`]. Fails if a restored free
    /// count exceeds this CU's configured capacity.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.free_wf = dec.u32()?;
        self.free_lds = dec.u32()?;
        self.free_vgprs = dec.u32()?;
        if self.free_wf > self.wf_slots
            || self.free_lds > self.lds_bytes
            || self.free_vgprs > self.vgprs
        {
            return Err(CodecError::Invalid(format!(
                "CU {} free resources exceed capacity",
                self.id
            )));
        }
        let n = dec.count(4)?;
        self.resident.clear();
        self.resident.reserve(n);
        for _ in 0..n {
            self.resident.push(dec.u32()?);
        }
        self.enabled = dec.bool()?;
        self.l1.load(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::isca2020_baseline()
    }

    #[test]
    fn admits_until_wavefront_slots_exhausted() {
        let c = cfg();
        let mut cu = Cu::new(0, &c);
        let req = WgResources::default_heterosync(); // 4 wavefronts
        assert_eq!(cu.max_occupancy(&req), 10); // 40 slots / 4
        let mut admitted = 0;
        while cu.fits(&req) {
            cu.admit(admitted, &req);
            admitted += 1;
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn lds_limits_occupancy() {
        let c = cfg();
        let cu = Cu::new(0, &c);
        let req = WgResources {
            wavefronts: 1,
            lds_bytes: 20 * 1024,
            vgprs_per_wavefront: 1,
        };
        assert_eq!(cu.max_occupancy(&req), 3); // 64 KB / 20 KB
    }

    #[test]
    fn release_restores_capacity() {
        let c = cfg();
        let mut cu = Cu::new(0, &c);
        let req = WgResources::default_heterosync();
        cu.admit(7, &req);
        assert_eq!(cu.resident(), &[7]);
        cu.release(7, &req);
        assert!(cu.resident().is_empty());
        assert_eq!(cu.max_occupancy(&req), 10);
        assert!(cu.fits(&req));
    }

    #[test]
    fn disabled_cu_rejects_work() {
        let c = cfg();
        let mut cu = Cu::new(0, &c);
        let req = WgResources::default_heterosync();
        cu.disable();
        assert!(!cu.fits(&req));
        assert!(!cu.is_enabled());
        cu.enable();
        assert!(cu.fits(&req));
    }

    #[test]
    #[should_panic(expected = "cannot admit")]
    fn over_admission_panics() {
        let c = cfg();
        let mut cu = Cu::new(0, &c);
        let req = WgResources {
            wavefronts: 40,
            lds_bytes: 0,
            vgprs_per_wavefront: 1,
        };
        cu.admit(0, &req);
        cu.admit(1, &req);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn release_of_foreign_wg_panics() {
        let c = cfg();
        let mut cu = Cu::new(0, &c);
        cu.release(3, &WgResources::default_heterosync());
    }
}
