//! Run outcomes, summaries, and forensic hang reports.

use std::fmt;

use awg_mem::Addr;
use awg_sim::{Cycle, Stats};

use crate::policy::{MonitorEntrySnapshot, SyncCond};
use crate::watchdog::CancelCause;
use crate::wg::{WgId, WgState};

/// Aggregate measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Kernel completion cycle (or the cycle the run was aborted at).
    pub cycles: Cycle,
    /// Dynamic instruction count across all WGs.
    pub insts: u64,
    /// Dynamic atomic instruction count (the Fig 9 wait-efficiency metric).
    pub atomics: u64,
    /// Sum over WGs of cycles spent running (Fig 11).
    pub running_cycles: u64,
    /// Sum over WGs of cycles spent waiting on synchronization (Fig 11).
    pub waiting_cycles: u64,
    /// Context switches out performed.
    pub switches_out: u64,
    /// Context switches (back) in performed.
    pub switches_in: u64,
    /// Wakes delivered to waiting WGs.
    pub resumes: u64,
    /// Wakes after which the WG's very next check failed again
    /// (the unnecessary resumes MonRS-All drowns in, §IV.C.iii).
    pub unnecessary_resumes: u64,
    /// Full statistics registry (cache/DRAM/policy counters).
    pub stats: Stats,
}

impl RunSummary {
    /// Fraction of resumes that were unnecessary.
    pub fn unnecessary_resume_ratio(&self) -> f64 {
        if self.resumes == 0 {
            0.0
        } else {
            self.unnecessary_resumes as f64 / self.resumes as f64
        }
    }
}

/// One unfinished WG's wait situation at abort time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WgWaitInfo {
    /// The WG.
    pub wg: WgId,
    /// Its scheduling state when the run was aborted.
    pub state: WgState,
    /// Its program counter.
    pub pc: usize,
    /// The synchronization condition it was blocked on, if any.
    pub cond: Option<SyncCond>,
    /// For busy-wait architectures that never declare a wait condition:
    /// the address the WG was hammering with consecutive atomics, and the
    /// streak length (a spin-detection heuristic; only set when `cond` is
    /// absent).
    pub spinning_on: Option<(Addr, u64)>,
    /// The value actually in memory at the blocked address at abort time
    /// (`None` when the WG held no condition and no spin was detected).
    pub observed: Option<i64>,
    /// Cycles spent in the current waiting episode.
    pub waited: Cycle,
    /// Cycles until its fallback timeout would have fired, if one was
    /// armed.
    pub timeout_in: Option<Cycle>,
}

/// Forensic diagnostics captured when a run deadlocks or hits the cycle
/// cap: who is stuck, on what address, expecting what, and what the memory
/// actually holds.
#[derive(Debug, Clone, Default)]
pub struct HangReport {
    /// Cycle the report was taken at.
    pub at: Cycle,
    /// Every unfinished WG, with its wait situation.
    pub unfinished: Vec<WgWaitInfo>,
    /// Live SyncMon condition entries, as reported by the policy.
    pub monitor_entries: Vec<MonitorEntrySnapshot>,
    /// Waits-for summary: each blocked sync address with the WGs parked on
    /// it, sorted by address.
    pub waits_for: Vec<(Addr, Vec<WgId>)>,
}

impl HangReport {
    /// The unfinished WGs demonstrably blocked on a sync address — either
    /// holding a declared wait condition or caught spinning on one address.
    pub fn blocked_on_sync(&self) -> impl Iterator<Item = &WgWaitInfo> {
        self.unfinished
            .iter()
            .filter(|w| w.cond.is_some() || w.spinning_on.is_some())
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang report @ cycle {}: {} unfinished WG(s)",
            self.at,
            self.unfinished.len()
        )?;
        for w in &self.unfinished {
            write!(f, "  wg {:>3} {:?} pc={}", w.wg, w.state, w.pc)?;
            match (w.cond, w.observed) {
                (Some(c), Some(obs)) => {
                    write!(
                        f,
                        " waits on 0x{:x} for {} (observed {}), waited {} cyc",
                        c.addr, c.expected, obs, w.waited
                    )?;
                    match w.timeout_in {
                        Some(t) => write!(f, ", timeout in {t}")?,
                        None => write!(f, ", no timeout armed")?,
                    }
                }
                _ => match (w.spinning_on, w.observed) {
                    (Some((addr, streak)), Some(obs)) => write!(
                        f,
                        " spinning on 0x{addr:x} (observed {obs}, {streak} consecutive atomics)"
                    )?,
                    _ => write!(f, " (no sync condition)")?,
                },
            }
            writeln!(f)?;
        }
        if !self.monitor_entries.is_empty() {
            writeln!(f, "  live monitor entries:")?;
            for e in &self.monitor_entries {
                writeln!(
                    f,
                    "    0x{:x} expects {} ({} waiter(s))",
                    e.addr, e.expected, e.waiters
                )?;
            }
        }
        if !self.waits_for.is_empty() {
            writeln!(f, "  waits-for:")?;
            for (addr, wgs) in &self.waits_for {
                writeln!(f, "    0x{addr:x} <- {wgs:?}")?;
            }
        }
        Ok(())
    }
}

/// How a simulation ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Every WG halted.
    Completed(RunSummary),
    /// No global progress for the configured quiescence window while WGs
    /// remained unfinished — the hardware deadlock the paper's Baseline
    /// hits when oversubscribed (Fig 15).
    Deadlocked {
        /// Cycle at which deadlock was declared.
        at: Cycle,
        /// Number of unfinished WGs.
        unfinished: usize,
        /// Measurements up to the abort.
        summary: RunSummary,
        /// Forensic snapshot of the stuck machine.
        hang: HangReport,
    },
    /// The hard cycle cap was reached.
    CycleLimit {
        /// Cycle at which the cap was hit.
        at: Cycle,
        /// Number of unfinished WGs.
        unfinished: usize,
        /// Measurements up to the abort.
        summary: RunSummary,
        /// Forensic snapshot of the still-running machine.
        hang: HangReport,
    },
    /// A watchdog cancelled the run before it could finish — the job's
    /// wall-clock deadline or simulated-cycle budget was exceeded, or the
    /// campaign was interrupted. The summary and hang report cover the run
    /// up to the cancellation point.
    Cancelled {
        /// Cycle at which the run was cancelled.
        at: Cycle,
        /// Number of unfinished WGs.
        unfinished: usize,
        /// Which watchdog limit fired.
        cause: CancelCause,
        /// Measurements up to the cancellation.
        summary: RunSummary,
        /// Forensic snapshot of the machine at cancellation time.
        hang: HangReport,
    },
}

impl RunOutcome {
    /// The summary regardless of how the run ended.
    pub fn summary(&self) -> &RunSummary {
        match self {
            RunOutcome::Completed(s) => s,
            RunOutcome::Deadlocked { summary, .. } => summary,
            RunOutcome::CycleLimit { summary, .. } => summary,
            RunOutcome::Cancelled { summary, .. } => summary,
        }
    }

    /// Whether the kernel ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// Whether the run deadlocked.
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, RunOutcome::Deadlocked { .. })
    }

    /// Completion cycles, if the run completed.
    pub fn completed_cycles(&self) -> Option<Cycle> {
        match self {
            RunOutcome::Completed(s) => Some(s.cycles),
            _ => None,
        }
    }

    /// The forensic hang report, for runs that did not complete.
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Deadlocked { hang, .. } => Some(hang),
            RunOutcome::CycleLimit { hang, .. } => Some(hang),
            RunOutcome::Cancelled { hang, .. } => Some(hang),
        }
    }

    /// The cancellation point and cause, if a watchdog cancelled the run.
    pub fn cancelled(&self) -> Option<(Cycle, CancelCause)> {
        match self {
            RunOutcome::Cancelled { at, cause, .. } => Some((*at, *cause)),
            _ => None,
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed(s) => write!(f, "completed in {} cycles", s.cycles),
            RunOutcome::Deadlocked { at, unfinished, .. } => {
                write!(
                    f,
                    "DEADLOCK at cycle {at} with {unfinished} unfinished WG(s)"
                )
            }
            RunOutcome::CycleLimit { at, unfinished, .. } => {
                write!(
                    f,
                    "cycle limit hit at {at} with {unfinished} unfinished WG(s)"
                )
            }
            RunOutcome::Cancelled {
                at,
                unfinished,
                cause,
                ..
            } => {
                write!(
                    f,
                    "cancelled at cycle {at} ({cause}) with {unfinished} unfinished WG(s)"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            cycles: 1000,
            insts: 10,
            atomics: 4,
            running_cycles: 700,
            waiting_cycles: 300,
            switches_out: 1,
            switches_in: 1,
            resumes: 4,
            unnecessary_resumes: 1,
            stats: Stats::new(),
        }
    }

    fn hang() -> HangReport {
        HangReport {
            at: 5000,
            unfinished: vec![WgWaitInfo {
                wg: 2,
                state: WgState::Stalled,
                pc: 7,
                cond: Some(SyncCond {
                    addr: 4096,
                    expected: 0,
                }),
                spinning_on: None,
                observed: Some(1),
                waited: 4000,
                timeout_in: None,
            }],
            monitor_entries: vec![MonitorEntrySnapshot {
                addr: 4096,
                expected: 0,
                waiters: 1,
            }],
            waits_for: vec![(4096, vec![2])],
        }
    }

    #[test]
    fn outcome_accessors() {
        let c = RunOutcome::Completed(summary());
        assert!(c.is_completed());
        assert!(!c.is_deadlocked());
        assert_eq!(c.completed_cycles(), Some(1000));
        assert!(c.hang_report().is_none());

        let d = RunOutcome::Deadlocked {
            at: 5000,
            unfinished: 3,
            summary: summary(),
            hang: hang(),
        };
        assert!(d.is_deadlocked());
        assert_eq!(d.completed_cycles(), None);
        assert_eq!(d.summary().cycles, 1000);
        assert_eq!(d.hang_report().unwrap().at, 5000);

        let l = RunOutcome::CycleLimit {
            at: 9000,
            unfinished: 1,
            summary: summary(),
            hang: HangReport::default(),
        };
        assert!(!l.is_completed() && !l.is_deadlocked());
        assert!(l.hang_report().is_some());
    }

    #[test]
    fn cancelled_outcome_carries_cause_and_forensics() {
        let c = RunOutcome::Cancelled {
            at: 7000,
            unfinished: 2,
            cause: CancelCause::CycleBudget(5000),
            summary: summary(),
            hang: hang(),
        };
        assert!(!c.is_completed() && !c.is_deadlocked());
        assert_eq!(c.completed_cycles(), None);
        assert_eq!(c.summary().cycles, 1000);
        assert_eq!(c.hang_report().unwrap().at, 5000);
        assert_eq!(c.cancelled(), Some((7000, CancelCause::CycleBudget(5000))));
        assert_eq!(RunOutcome::Completed(summary()).cancelled(), None);
        let text = c.to_string();
        assert!(text.contains("cancelled at cycle 7000"), "{text}");
        assert!(text.contains("budget 5000"), "{text}");
        assert!(text.contains("2 unfinished"), "{text}");
    }

    #[test]
    fn outcome_display_states_why() {
        let c = format!("{}", RunOutcome::Completed(summary()));
        assert!(c.contains("completed in 1000"));
        let d = format!(
            "{}",
            RunOutcome::Deadlocked {
                at: 5000,
                unfinished: 3,
                summary: summary(),
                hang: hang(),
            }
        );
        assert!(d.contains("DEADLOCK") && d.contains("5000") && d.contains('3'));
        let l = format!(
            "{}",
            RunOutcome::CycleLimit {
                at: 9000,
                unfinished: 1,
                summary: summary(),
                hang: HangReport::default(),
            }
        );
        assert!(l.contains("cycle limit") && l.contains("9000"));
    }

    #[test]
    fn hang_report_names_addresses() {
        let h = hang();
        assert_eq!(h.blocked_on_sync().count(), 1);
        let text = h.to_string();
        assert!(text.contains("0x1000"), "sync address missing: {text}");
        assert!(
            text.contains("observed 1"),
            "observed value missing: {text}"
        );
        assert!(
            text.contains("waits-for"),
            "waits-for section missing: {text}"
        );
    }

    #[test]
    fn spinners_count_as_blocked() {
        let mut h = hang();
        h.unfinished.push(WgWaitInfo {
            wg: 5,
            state: WgState::Running,
            pc: 3,
            cond: None,
            spinning_on: Some((8192, 240)),
            observed: Some(7),
            waited: 0,
            timeout_in: None,
        });
        assert_eq!(h.blocked_on_sync().count(), 2);
        let text = h.to_string();
        assert!(
            text.contains("spinning on 0x2000"),
            "spin address missing: {text}"
        );
        assert!(text.contains("240 consecutive"), "streak missing: {text}");
    }

    #[test]
    fn unnecessary_ratio() {
        let s = summary();
        assert!((s.unnecessary_resume_ratio() - 0.25).abs() < 1e-9);
        let zero = RunSummary {
            resumes: 0,
            unnecessary_resumes: 0,
            ..summary()
        };
        assert_eq!(zero.unnecessary_resume_ratio(), 0.0);
    }
}
