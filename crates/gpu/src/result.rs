//! Run outcomes and summaries.

use awg_sim::{Cycle, Stats};

/// Aggregate measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Kernel completion cycle (or the cycle the run was aborted at).
    pub cycles: Cycle,
    /// Dynamic instruction count across all WGs.
    pub insts: u64,
    /// Dynamic atomic instruction count (the Fig 9 wait-efficiency metric).
    pub atomics: u64,
    /// Sum over WGs of cycles spent running (Fig 11).
    pub running_cycles: u64,
    /// Sum over WGs of cycles spent waiting on synchronization (Fig 11).
    pub waiting_cycles: u64,
    /// Context switches out performed.
    pub switches_out: u64,
    /// Context switches (back) in performed.
    pub switches_in: u64,
    /// Wakes delivered to waiting WGs.
    pub resumes: u64,
    /// Wakes after which the WG's very next check failed again
    /// (the unnecessary resumes MonRS-All drowns in, §IV.C.iii).
    pub unnecessary_resumes: u64,
    /// Full statistics registry (cache/DRAM/policy counters).
    pub stats: Stats,
}

impl RunSummary {
    /// Fraction of resumes that were unnecessary.
    pub fn unnecessary_resume_ratio(&self) -> f64 {
        if self.resumes == 0 {
            0.0
        } else {
            self.unnecessary_resumes as f64 / self.resumes as f64
        }
    }
}

/// How a simulation ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Every WG halted.
    Completed(RunSummary),
    /// No global progress for the configured quiescence window while WGs
    /// remained unfinished — the hardware deadlock the paper's Baseline
    /// hits when oversubscribed (Fig 15).
    Deadlocked {
        /// Cycle at which deadlock was declared.
        at: Cycle,
        /// Number of unfinished WGs.
        unfinished: usize,
        /// Measurements up to the abort.
        summary: RunSummary,
    },
    /// The hard cycle cap was reached.
    CycleLimit {
        /// Measurements up to the abort.
        summary: RunSummary,
    },
}

impl RunOutcome {
    /// The summary regardless of how the run ended.
    pub fn summary(&self) -> &RunSummary {
        match self {
            RunOutcome::Completed(s) => s,
            RunOutcome::Deadlocked { summary, .. } => summary,
            RunOutcome::CycleLimit { summary } => summary,
        }
    }

    /// Whether the kernel ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// Whether the run deadlocked.
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, RunOutcome::Deadlocked { .. })
    }

    /// Completion cycles, if the run completed.
    pub fn completed_cycles(&self) -> Option<Cycle> {
        match self {
            RunOutcome::Completed(s) => Some(s.cycles),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            cycles: 1000,
            insts: 10,
            atomics: 4,
            running_cycles: 700,
            waiting_cycles: 300,
            switches_out: 1,
            switches_in: 1,
            resumes: 4,
            unnecessary_resumes: 1,
            stats: Stats::new(),
        }
    }

    #[test]
    fn outcome_accessors() {
        let c = RunOutcome::Completed(summary());
        assert!(c.is_completed());
        assert!(!c.is_deadlocked());
        assert_eq!(c.completed_cycles(), Some(1000));

        let d = RunOutcome::Deadlocked {
            at: 5000,
            unfinished: 3,
            summary: summary(),
        };
        assert!(d.is_deadlocked());
        assert_eq!(d.completed_cycles(), None);
        assert_eq!(d.summary().cycles, 1000);
    }

    #[test]
    fn unnecessary_ratio() {
        let s = summary();
        assert!((s.unnecessary_resume_ratio() - 0.25).abs() < 1e-9);
        let zero = RunSummary {
            resumes: 0,
            unnecessary_resumes: 0,
            ..summary()
        };
        assert_eq!(zero.unnecessary_resume_ratio(), 0.0);
    }
}
