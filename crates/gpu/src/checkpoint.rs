//! Whole-machine checkpoint/restore: crash-survivable single runs with
//! digest-verified deterministic resume.
//!
//! A checkpoint is a versioned snapshot of *everything mutable* in the
//! machine — per-CU/WG register and PC state, scheduler-policy internals,
//! monitor tables, L2/DRAM contents, the in-flight event calendar with its
//! FIFO sequence numbers, chaos cursors, telemetry accumulators, and the
//! cycle-windowed digest trail. Configuration (geometry, kernel, fault
//! plan, instrumentation flags) is deliberately *not* stored: restore
//! overlays the snapshot onto a freshly-built machine with the same
//! configuration, and a 64-bit identity fingerprint in the header rejects
//! snapshots from a different configuration up front.
//!
//! The file layout follows the PR 5 journal's durability discipline:
//!
//! ```text
//! magic "AWGCKPT\0" | version u32 | identity u64 | cycle u64
//! section: tag u8 | len u64 | bytes | crc32 u32
//! ```
//!
//! written to a temporary sibling and atomically renamed into place, so a
//! crash mid-write leaves either the previous snapshot or none — never a
//! torn one. Every decode failure (truncation, bit flip, stale version,
//! identity mismatch, inconsistent machine) fails closed as
//! [`SimError::CorruptCheckpoint`]: the one thing a restore must never do
//! is resume a machine that could silently diverge.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use awg_sim::{crc32, Cycle, Dec, Enc};

use crate::error::SimError;
use crate::machine::Gpu;

/// File magic for checkpoint snapshots.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"AWGCKPT\0";
/// Current snapshot format version. Bumped to 2 when the attribution
/// ledger (per-WG cause accounting in the telemetry hub, `fault_evicted`
/// on the WG context) extended the serialized machine state.
pub const CHECKPOINT_VERSION: u32 = 2;
/// Section tag for the machine-state payload.
const SECTION_MACHINE: u8 = 1;
/// Header size: magic + version + identity + cycle.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Cooperative checkpointing parameters for [`Gpu::set_checkpoint`].
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Snapshot destination (rewritten in place at every boundary).
    pub path: PathBuf,
    /// Snapshot interval in simulated cycles.
    pub every: Cycle,
    /// Identity fingerprint of the run configuration; restore refuses a
    /// snapshot whose stored identity differs.
    pub identity: u64,
    /// Crash-test hook: exit the process with status 137 (the SIGKILL
    /// code) immediately after the Nth snapshot of this process hits disk.
    pub kill_after: Option<u64>,
}

/// A parsed, CRC-verified snapshot, ready for [`restore_into`].
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// Format version the file declared (always [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Identity fingerprint the file was written under.
    pub identity: u64,
    /// Simulated cycle the machine had reached, from the header — readable
    /// without decoding the payload, so a supervisor can peek how far a
    /// dead job got.
    pub cycle: Cycle,
    machine: Vec<u8>,
}

/// Serializes `gpu` and writes the snapshot to `path` atomically
/// (temporary sibling + rename).
pub fn write_checkpoint(gpu: &Gpu, identity: u64, path: &Path) -> io::Result<()> {
    let mut body = Enc::new();
    gpu.save_state(&mut body);
    let machine = body.into_bytes();

    let mut out = Vec::with_capacity(HEADER_LEN + machine.len() + 13);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&identity.to_le_bytes());
    out.extend_from_slice(&gpu.now().to_le_bytes());
    out.push(SECTION_MACHINE);
    out.extend_from_slice(&(machine.len() as u64).to_le_bytes());
    out.extend_from_slice(&machine);
    out.extend_from_slice(&crc32(&machine).to_le_bytes());

    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn corrupt(msg: impl Into<String>) -> SimError {
    SimError::CorruptCheckpoint(msg.into())
}

/// Reads and CRC-verifies a snapshot file. Header peeking, framing, and
/// checksum all happen here; machine-level consistency is checked by
/// [`restore_into`].
pub fn read_checkpoint(path: &Path) -> Result<CheckpointImage, SimError> {
    let bytes =
        fs::read(path).map_err(|e| corrupt(format!("cannot read {}: {e}", path.display())))?;
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic: not a checkpoint file"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(corrupt(format!(
            "format version {version} (this build reads version {CHECKPOINT_VERSION})"
        )));
    }
    let identity = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let cycle = u64::from_le_bytes(bytes[20..28].try_into().unwrap());

    let rest = &bytes[HEADER_LEN..];
    if rest.len() < 9 {
        return Err(corrupt("truncated before section frame"));
    }
    if rest[0] != SECTION_MACHINE {
        return Err(corrupt(format!("unknown section tag {}", rest[0])));
    }
    let len = u64::from_le_bytes(rest[1..9].try_into().unwrap()) as usize;
    let frame = &rest[9..];
    if frame.len() < len + 4 {
        return Err(corrupt(format!(
            "section claims {len} bytes, only {} present",
            frame.len().saturating_sub(4)
        )));
    }
    let machine = &frame[..len];
    let stored = u32::from_le_bytes(frame[len..len + 4].try_into().unwrap());
    let actual = crc32(machine);
    if stored != actual {
        return Err(corrupt(format!(
            "section crc mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    if frame.len() != len + 4 {
        return Err(corrupt(format!(
            "{} trailing bytes after section",
            frame.len() - len - 4
        )));
    }
    Ok(CheckpointImage {
        version,
        identity,
        cycle,
        machine: machine.to_vec(),
    })
}

/// Overlays `image` onto `gpu`, which must be freshly built from the same
/// configuration the snapshot was taken under (`expected_identity` is the
/// caller's fingerprint of that configuration). After decoding, the full
/// invariant oracle sweeps the rehydrated machine; any violation rejects
/// the restore.
pub fn restore_into(
    gpu: &mut Gpu,
    image: &CheckpointImage,
    expected_identity: u64,
) -> Result<(), SimError> {
    if image.identity != expected_identity {
        return Err(corrupt(format!(
            "identity mismatch: snapshot {:#018x}, this run {:#018x} — \
             the snapshot is from a different configuration",
            image.identity, expected_identity
        )));
    }
    let mut dec = Dec::new(&image.machine);
    gpu.load_state(&mut dec)
        .and_then(|()| dec.finish())
        .map_err(|e| corrupt(format!("machine state: {e}")))?;
    if gpu.now() != image.cycle {
        return Err(corrupt(format!(
            "header cycle {} disagrees with machine cycle {}",
            image.cycle,
            gpu.now()
        )));
    }
    let violations = gpu.check_invariants();
    if let Some(v) = violations.first() {
        return Err(corrupt(format!(
            "rehydrated machine violates invariants: {v}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GpuConfig, Kernel, WgResources};
    use crate::policy::BusyWaitPolicy;
    use awg_isa::ProgramBuilder;

    fn small_gpu() -> Gpu {
        let mut b = ProgramBuilder::new("ckpt");
        b.compute(50);
        b.halt();
        let kernel = Kernel::new(b.build().unwrap(), 8, WgResources::default());
        Gpu::new(
            GpuConfig::isca2020_baseline(),
            kernel,
            Box::new(BusyWaitPolicy::new()),
        )
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("awg_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn fresh_machine_round_trips() {
        let gpu = small_gpu();
        let path = tmp_path("roundtrip.ckpt");
        write_checkpoint(&gpu, 0xFEED, &path).unwrap();
        let image = read_checkpoint(&path).unwrap();
        assert_eq!(image.version, CHECKPOINT_VERSION);
        assert_eq!(image.identity, 0xFEED);
        assert_eq!(image.cycle, 0);
        let mut fresh = small_gpu();
        restore_into(&mut fresh, &image, 0xFEED).unwrap();
        assert_eq!(fresh.digest(), gpu.digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identity_mismatch_fails_closed() {
        let gpu = small_gpu();
        let path = tmp_path("identity.ckpt");
        write_checkpoint(&gpu, 1, &path).unwrap();
        let image = read_checkpoint(&path).unwrap();
        let mut fresh = small_gpu();
        let err = restore_into(&mut fresh, &image, 2).unwrap_err();
        assert!(matches!(err, SimError::CorruptCheckpoint(_)), "{err}");
        assert!(err.to_string().contains("identity mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_version_fails_closed() {
        let gpu = small_gpu();
        let path = tmp_path("version.ckpt");
        write_checkpoint(&gpu, 7, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_in_payload_fails_crc() {
        let gpu = small_gpu();
        let path = tmp_path("bitflip.ckpt");
        write_checkpoint(&gpu, 7, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + 9 + (bytes.len() - HEADER_LEN - 13) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_any_point_fails_closed() {
        let gpu = small_gpu();
        let path = tmp_path("truncate.ckpt");
        write_checkpoint(&gpu, 7, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Sample a spread of truncation points (full scan lives in the
        // harness proptest suite).
        for cut in [
            0,
            1,
            7,
            11,
            19,
            27,
            28,
            36,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = read_checkpoint(&path).unwrap_err();
            assert!(
                matches!(err, SimError::CorruptCheckpoint(_)),
                "cut at {cut}: {err}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_mid_write_leaves_previous_snapshot() {
        // The atomic rename means a .tmp sibling never shadows the real
        // file; simulate a crash by leaving a torn tmp behind.
        let gpu = small_gpu();
        let path = tmp_path("atomic.ckpt");
        write_checkpoint(&gpu, 7, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        std::fs::write(tmp_sibling(&path), &good[..good.len() / 2]).unwrap();
        let image = read_checkpoint(&path).unwrap();
        assert_eq!(image.identity, 7);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(tmp_sibling(&path)).unwrap();
    }
}
