//! The seeded chaos engine: deterministic fault plans.
//!
//! A [`FaultPlan`] is a timeline of adversity the machine injects while a
//! kernel runs — repeated CU hot-unplug/replug ("flapping", generalizing the
//! §VI one-shot resource loss), wake delivery chaos (drops, delays,
//! duplication, reordering), SyncMon condition evictions, forced
//! Bloom-filter false-positive storms, and transient context-switch stalls.
//! Plans are generated from a single `u64` seed via the simulator's own
//! [`Xoshiro256StarStar`] generator, so a reported hang is reproducible from
//! its seed alone and the same seed always yields a bit-identical run.
//!
//! Architectures without WG-granularity rescheduling (Baseline, Sleep)
//! strand any WG that loses its CU, so plans for them are generated with
//! [`FaultPlanConfig::resident_safe`], which keeps every other fault class
//! but never unplugs a CU.

use awg_sim::{Cycle, Xoshiro256StarStar};

use crate::policy::PolicyFault;

/// How wake deliveries are perturbed inside an active chaos window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeChaosMode {
    /// Wakes are silently discarded (the lost-notification scenario;
    /// fallback timeouts must rescue the waiters).
    Drop,
    /// Every wake is late by this many extra cycles.
    Delay(Cycle),
    /// Every wake is delivered twice (the staleness tokens must absorb the
    /// duplicate).
    Duplicate,
    /// Wake batches are delivered in reverse order with staggered delays.
    Reorder,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Disable a CU and preempt its residents (hot-unplug).
    CuLoss {
        /// The CU to disable.
        cu: usize,
    },
    /// Re-enable a previously disabled CU (replug).
    CuRestore {
        /// The CU to re-enable.
        cu: usize,
    },
    /// Open a wake-perturbation window of `window` cycles.
    WakeChaos {
        /// The perturbation applied inside the window.
        mode: WakeChaosMode,
        /// Window length in cycles.
        window: Cycle,
    },
    /// Inject a fault into the policy's monitor hardware.
    Policy(PolicyFault),
    /// For `window` cycles, every context save/restore suffers `extra`
    /// additional cycles (a transient stall: the context traffic loses
    /// arbitration and retries with backoff until it wins).
    CtxStall {
        /// Extra cycles charged per switch inside the window.
        extra: Cycle,
        /// Window length in cycles.
        window: Cycle,
    },
}

/// A fault with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle the fault fires at.
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// Knobs for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Number of CUs in the target machine (flaps pick among these).
    pub num_cus: usize,
    /// Earliest injection cycle.
    pub start: Cycle,
    /// Latest injection cycle.
    pub horizon: Cycle,
    /// CU unplug/replug pairs to schedule.
    pub cu_flaps: usize,
    /// Shortest CU outage.
    pub flap_min: Cycle,
    /// Longest CU outage. Must stay well under the quiescence window or the
    /// outage itself reads as a deadlock.
    pub flap_max: Cycle,
    /// Wake-perturbation windows to schedule.
    pub wake_windows: usize,
    /// Shortest wake window.
    pub wake_window_min: Cycle,
    /// Longest wake window.
    pub wake_window_max: Cycle,
    /// SyncMon eviction faults to schedule.
    pub evictions: usize,
    /// Bloom-filter pollution storms to schedule.
    pub bloom_storms: usize,
    /// Context-switch stall windows to schedule.
    pub ctx_stalls: usize,
    /// Whether CU flapping is allowed. `false` for architectures that
    /// cannot reschedule swapped-out WGs (Baseline, Sleep).
    pub allow_cu_loss: bool,
}

impl FaultPlanConfig {
    /// The standard chaos mix for a machine with `num_cus` CUs, scaled so
    /// every outage fits comfortably inside a quiescence window.
    pub fn standard(num_cus: usize) -> Self {
        FaultPlanConfig {
            num_cus,
            start: 1_000,
            horizon: 150_000,
            cu_flaps: 2,
            flap_min: 4_000,
            flap_max: 40_000,
            wake_windows: 2,
            wake_window_min: 2_000,
            wake_window_max: 20_000,
            evictions: 2,
            bloom_storms: 2,
            ctx_stalls: 2,
            allow_cu_loss: true,
        }
    }

    /// The same mix minus CU loss, safe for architectures that strand
    /// swapped-out WGs.
    pub fn resident_safe(mut self) -> Self {
        self.allow_cu_loss = false;
        self
    }
}

/// A deterministic, seeded timeline of injected faults, sorted by time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (reproduces it exactly).
    pub seed: u64,
    /// The timeline, sorted by `at` (generation order breaks ties).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (still engages the machine's chaos backstops, so a
    /// clean run under an empty plan is the control arm of a differential
    /// experiment).
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Generates the plan for `seed` under `cfg`. Same seed and config ⇒
    /// identical plan, on every platform.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        assert!(cfg.num_cus > 0, "plan needs a machine");
        assert!(cfg.start <= cfg.horizon, "inverted injection window");
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut events = Vec::new();
        let at = |rng: &mut Xoshiro256StarStar| rng.next_range(cfg.start, cfg.horizon);
        if cfg.allow_cu_loss {
            for _ in 0..cfg.cu_flaps {
                let cu = rng.next_below(cfg.num_cus as u64) as usize;
                let t = at(&mut rng);
                let outage = rng.next_range(cfg.flap_min, cfg.flap_max);
                events.push(FaultEvent {
                    at: t,
                    kind: FaultKind::CuLoss { cu },
                });
                events.push(FaultEvent {
                    at: t + outage,
                    kind: FaultKind::CuRestore { cu },
                });
            }
        }
        for _ in 0..cfg.wake_windows {
            let t = at(&mut rng);
            let window = rng.next_range(cfg.wake_window_min, cfg.wake_window_max);
            let mode = match rng.next_below(4) {
                0 => WakeChaosMode::Drop,
                1 => WakeChaosMode::Delay(rng.next_range(500, 5_000)),
                2 => WakeChaosMode::Duplicate,
                _ => WakeChaosMode::Reorder,
            };
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::WakeChaos { mode, window },
            });
        }
        for _ in 0..cfg.evictions {
            let t = at(&mut rng);
            let count = rng.next_range(1, 4) as usize;
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::Policy(PolicyFault::EvictConditions { count }),
            });
        }
        for _ in 0..cfg.bloom_storms {
            let t = at(&mut rng);
            let unique_values = rng.next_range(3, 8) as usize;
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::Policy(PolicyFault::BloomStorm { unique_values }),
            });
        }
        for _ in 0..cfg.ctx_stalls {
            let t = at(&mut rng);
            let extra = rng.next_range(200, 2_000);
            let window = rng.next_range(2_000, 20_000);
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::CtxStall { extra, window },
            });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// Highest CU index any flap touches, if the plan unplugs CUs at all
    /// (installation validates it against the machine).
    pub fn max_cu(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CuLoss { cu } | FaultKind::CuRestore { cu } => Some(cu),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::standard(4);
        let a = FaultPlan::generate(7, &cfg);
        let b = FaultPlan::generate(7, &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn timeline_is_sorted_and_complete() {
        let cfg = FaultPlanConfig::standard(4);
        let plan = FaultPlan::generate(3, &cfg);
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        // 2 flaps (loss+restore each) + 2 wake windows + 2 evictions
        // + 2 storms + 2 ctx stalls.
        assert_eq!(plan.events.len(), 2 * 2 + 2 + 2 + 2 + 2);
        assert!(plan.max_cu().unwrap() < 4);
    }

    #[test]
    fn every_flap_is_paired() {
        let cfg = FaultPlanConfig::standard(2);
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            let losses: Vec<usize> = plan
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    FaultKind::CuLoss { cu } => Some(cu),
                    _ => None,
                })
                .collect();
            let restores: Vec<usize> = plan
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    FaultKind::CuRestore { cu } => Some(cu),
                    _ => None,
                })
                .collect();
            let mut l = losses.clone();
            let mut r = restores.clone();
            l.sort_unstable();
            r.sort_unstable();
            assert_eq!(l, r, "seed {seed}: every unplugged CU must return");
        }
    }

    #[test]
    fn resident_safe_plans_never_unplug() {
        let cfg = FaultPlanConfig::standard(4).resident_safe();
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            assert!(plan.max_cu().is_none(), "seed {seed} unplugged a CU");
            assert!(!plan.events.is_empty(), "other fault classes must stay");
        }
    }

    #[test]
    fn outages_respect_bounds() {
        let mut cfg = FaultPlanConfig::standard(4);
        cfg.cu_flaps = 1; // exactly one pair, so the outage is unambiguous
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            let loss = plan
                .events
                .iter()
                .find(|e| matches!(e.kind, FaultKind::CuLoss { .. }))
                .expect("one loss");
            let restore = plan
                .events
                .iter()
                .find(|e| matches!(e.kind, FaultKind::CuRestore { .. }))
                .expect("one restore");
            let outage = restore.at - loss.at;
            assert!(
                (cfg.flap_min..=cfg.flap_max).contains(&outage),
                "seed {seed}: outage {outage} out of bounds"
            );
        }
    }
}
