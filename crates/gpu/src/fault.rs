//! The seeded chaos engine: deterministic fault plans.
//!
//! A [`FaultPlan`] is a timeline of adversity the machine injects while a
//! kernel runs — repeated CU hot-unplug/replug ("flapping", generalizing the
//! §VI one-shot resource loss), wake delivery chaos (drops, delays,
//! duplication, reordering), SyncMon condition evictions, forced
//! Bloom-filter false-positive storms, and transient context-switch stalls.
//! Plans are generated from a single `u64` seed via the simulator's own
//! [`Xoshiro256StarStar`] generator, so a reported hang is reproducible from
//! its seed alone and the same seed always yields a bit-identical run.
//!
//! Architectures without WG-granularity rescheduling (Baseline, Sleep)
//! strand any WG that loses its CU, so plans for them are generated with
//! [`FaultPlanConfig::resident_safe`], which keeps every other fault class
//! but never unplugs a CU.

use awg_sim::{Cycle, Xoshiro256StarStar};

use crate::policy::PolicyFault;

/// How wake deliveries are perturbed inside an active chaos window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeChaosMode {
    /// Wakes are silently discarded (the lost-notification scenario;
    /// fallback timeouts must rescue the waiters).
    Drop,
    /// Every wake is late by this many extra cycles.
    Delay(Cycle),
    /// Every wake is delivered twice (the staleness tokens must absorb the
    /// duplicate).
    Duplicate,
    /// Wake batches are delivered in reverse order with staggered delays.
    Reorder,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Disable a CU and preempt its residents (hot-unplug).
    CuLoss {
        /// The CU to disable.
        cu: usize,
    },
    /// Re-enable a previously disabled CU (replug).
    CuRestore {
        /// The CU to re-enable.
        cu: usize,
    },
    /// Open a wake-perturbation window of `window` cycles.
    WakeChaos {
        /// The perturbation applied inside the window.
        mode: WakeChaosMode,
        /// Window length in cycles.
        window: Cycle,
    },
    /// Inject a fault into the policy's monitor hardware.
    Policy(PolicyFault),
    /// For `window` cycles, every context save/restore suffers `extra`
    /// additional cycles (a transient stall: the context traffic loses
    /// arbitration and retries with backoff until it wins).
    CtxStall {
        /// Extra cycles charged per switch inside the window.
        extra: Cycle,
        /// Window length in cycles.
        window: Cycle,
    },
}

/// A fault with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle the fault fires at.
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// Knobs for seeded plan generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Number of CUs in the target machine (flaps pick among these).
    pub num_cus: usize,
    /// Earliest injection cycle.
    pub start: Cycle,
    /// Latest injection cycle.
    pub horizon: Cycle,
    /// CU unplug/replug pairs to schedule.
    pub cu_flaps: usize,
    /// Shortest CU outage.
    pub flap_min: Cycle,
    /// Longest CU outage. Must stay well under the quiescence window or the
    /// outage itself reads as a deadlock.
    pub flap_max: Cycle,
    /// Wake-perturbation windows to schedule.
    pub wake_windows: usize,
    /// Shortest wake window.
    pub wake_window_min: Cycle,
    /// Longest wake window.
    pub wake_window_max: Cycle,
    /// SyncMon eviction faults to schedule.
    pub evictions: usize,
    /// Bloom-filter pollution storms to schedule.
    pub bloom_storms: usize,
    /// Context-switch stall windows to schedule.
    pub ctx_stalls: usize,
    /// Whether CU flapping is allowed. `false` for architectures that
    /// cannot reschedule swapped-out WGs (Baseline, Sleep).
    pub allow_cu_loss: bool,
}

impl FaultPlanConfig {
    /// The standard chaos mix for a machine with `num_cus` CUs, scaled so
    /// every outage fits comfortably inside a quiescence window.
    pub fn standard(num_cus: usize) -> Self {
        FaultPlanConfig {
            num_cus,
            start: 1_000,
            horizon: 150_000,
            cu_flaps: 2,
            flap_min: 4_000,
            flap_max: 40_000,
            wake_windows: 2,
            wake_window_min: 2_000,
            wake_window_max: 20_000,
            evictions: 2,
            bloom_storms: 2,
            ctx_stalls: 2,
            allow_cu_loss: true,
        }
    }

    /// The same mix minus CU loss, safe for architectures that strand
    /// swapped-out WGs.
    pub fn resident_safe(mut self) -> Self {
        self.allow_cu_loss = false;
        self
    }
}

/// A deterministic, seeded timeline of injected faults, sorted by time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (reproduces it exactly).
    pub seed: u64,
    /// The timeline, sorted by `at` (generation order breaks ties).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (still engages the machine's chaos backstops, so a
    /// clean run under an empty plan is the control arm of a differential
    /// experiment).
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Generates the plan for `seed` under `cfg`. Same seed and config ⇒
    /// identical plan, on every platform.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        assert!(cfg.num_cus > 0, "plan needs a machine");
        assert!(cfg.start <= cfg.horizon, "inverted injection window");
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut events = Vec::new();
        let at = |rng: &mut Xoshiro256StarStar| rng.next_range(cfg.start, cfg.horizon);
        if cfg.allow_cu_loss {
            for _ in 0..cfg.cu_flaps {
                let cu = rng.next_below(cfg.num_cus as u64) as usize;
                let t = at(&mut rng);
                let outage = rng.next_range(cfg.flap_min, cfg.flap_max);
                events.push(FaultEvent {
                    at: t,
                    kind: FaultKind::CuLoss { cu },
                });
                events.push(FaultEvent {
                    at: t + outage,
                    kind: FaultKind::CuRestore { cu },
                });
            }
        }
        for _ in 0..cfg.wake_windows {
            let t = at(&mut rng);
            let window = rng.next_range(cfg.wake_window_min, cfg.wake_window_max);
            let mode = match rng.next_below(4) {
                0 => WakeChaosMode::Drop,
                1 => WakeChaosMode::Delay(rng.next_range(500, 5_000)),
                2 => WakeChaosMode::Duplicate,
                _ => WakeChaosMode::Reorder,
            };
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::WakeChaos { mode, window },
            });
        }
        for _ in 0..cfg.evictions {
            let t = at(&mut rng);
            let count = rng.next_range(1, 4) as usize;
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::Policy(PolicyFault::EvictConditions { count }),
            });
        }
        for _ in 0..cfg.bloom_storms {
            let t = at(&mut rng);
            let unique_values = rng.next_range(3, 8) as usize;
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::Policy(PolicyFault::BloomStorm { unique_values }),
            });
        }
        for _ in 0..cfg.ctx_stalls {
            let t = at(&mut rng);
            let extra = rng.next_range(200, 2_000);
            let window = rng.next_range(2_000, 20_000);
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::CtxStall { extra, window },
            });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { seed, events }
    }

    /// Highest CU index any flap touches, if the plan unplugs CUs at all
    /// (installation validates it against the machine).
    pub fn max_cu(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::CuLoss { cu } | FaultKind::CuRestore { cu } => Some(cu),
                _ => None,
            })
            .max()
    }

    /// Serializes the plan as a replayable JSON reproducer (the format
    /// [`FaultPlan::from_json`] parses). Dependency-free by construction:
    /// every field is an unsigned number or a fixed keyword.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            let body = match e.kind {
                FaultKind::CuLoss { cu } => format!("\"kind\": \"cu_loss\", \"cu\": {cu}"),
                FaultKind::CuRestore { cu } => format!("\"kind\": \"cu_restore\", \"cu\": {cu}"),
                FaultKind::WakeChaos { mode, window } => {
                    let mode = match mode {
                        WakeChaosMode::Drop => "\"mode\": \"drop\"".to_string(),
                        WakeChaosMode::Delay(extra) => {
                            format!("\"mode\": \"delay\", \"extra\": {extra}")
                        }
                        WakeChaosMode::Duplicate => "\"mode\": \"duplicate\"".to_string(),
                        WakeChaosMode::Reorder => "\"mode\": \"reorder\"".to_string(),
                    };
                    format!("\"kind\": \"wake_chaos\", {mode}, \"window\": {window}")
                }
                FaultKind::Policy(PolicyFault::EvictConditions { count }) => {
                    format!("\"kind\": \"evict_conditions\", \"count\": {count}")
                }
                FaultKind::Policy(PolicyFault::BloomStorm { unique_values }) => {
                    format!("\"kind\": \"bloom_storm\", \"unique_values\": {unique_values}")
                }
                FaultKind::CtxStall { extra, window } => {
                    format!("\"kind\": \"ctx_stall\", \"extra\": {extra}, \"window\": {window}")
                }
            };
            let comma = if i + 1 < self.events.len() { "," } else { "" };
            s.push_str(&format!("    {{\"at\": {}, {body}}}{comma}\n", e.at));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a plan previously written by [`FaultPlan::to_json`] (or
    /// hand-edited: whitespace and key order are free).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or semantic problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let obj = value.as_object("top level")?;
        let seed = json::get(obj, "seed")?.as_u64("seed")?;
        let mut events = Vec::new();
        for (i, item) in json::get(obj, "events")?
            .as_array("events")?
            .iter()
            .enumerate()
        {
            let ev = item.as_object(&format!("events[{i}]"))?;
            let at = json::get(ev, "at")?.as_u64("at")?;
            let kind = json::get(ev, "kind")?.as_str("kind")?;
            let num = |key: &str| -> Result<u64, String> {
                json::get(ev, key)
                    .map_err(|e| format!("events[{i}] ({kind}): {e}"))?
                    .as_u64(key)
            };
            let kind = match kind {
                "cu_loss" => FaultKind::CuLoss {
                    cu: num("cu")? as usize,
                },
                "cu_restore" => FaultKind::CuRestore {
                    cu: num("cu")? as usize,
                },
                "wake_chaos" => {
                    let mode = match json::get(ev, "mode")?.as_str("mode")? {
                        "drop" => WakeChaosMode::Drop,
                        "delay" => WakeChaosMode::Delay(num("extra")?),
                        "duplicate" => WakeChaosMode::Duplicate,
                        "reorder" => WakeChaosMode::Reorder,
                        other => return Err(format!("events[{i}]: unknown wake mode {other:?}")),
                    };
                    FaultKind::WakeChaos {
                        mode,
                        window: num("window")?,
                    }
                }
                "evict_conditions" => FaultKind::Policy(PolicyFault::EvictConditions {
                    count: num("count")? as usize,
                }),
                "bloom_storm" => FaultKind::Policy(PolicyFault::BloomStorm {
                    unique_values: num("unique_values")? as usize,
                }),
                "ctx_stall" => FaultKind::CtxStall {
                    extra: num("extra")?,
                    window: num("window")?,
                },
                other => return Err(format!("events[{i}]: unknown fault kind {other:?}")),
            };
            events.push(FaultEvent { at, kind });
        }
        if events.windows(2).any(|w| w[0].at > w[1].at) {
            return Err("events must be sorted by \"at\"".into());
        }
        Ok(FaultPlan { seed, events })
    }
}

/// A deliberately tiny JSON reader, just enough for fault-plan reproducers:
/// objects, arrays, unsigned integers, and plain strings. Kept private so
/// nothing else grows a dependency on it.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Number(u64),
        String(String),
    }

    impl Value {
        pub(super) fn as_object(&self, what: &str) -> Result<&[(String, Value)], String> {
            match self {
                Value::Object(fields) => Ok(fields),
                other => Err(format!("{what}: expected an object, got {other:?}")),
            }
        }

        pub(super) fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("{what}: expected an array, got {other:?}")),
            }
        }

        pub(super) fn as_u64(&self, what: &str) -> Result<u64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("{what}: expected a number, got {other:?}")),
            }
        }

        pub(super) fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::String(s) => Ok(s),
                other => Err(format!("{what}: expected a string, got {other:?}")),
            }
        }
    }

    pub(super) fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    pub(super) fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                ch as char,
                *pos,
                bytes.get(*pos).map(|&b| b as char)
            ))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b) if b.is_ascii_digit() => parse_number(bytes, pos),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|&b| b as char),
                *pos
            )),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        *pos,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        *pos,
                        other.map(|&b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                *pos += 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                return Err(format!("escape sequences unsupported (byte {})", *pos));
            }
            *pos += 1;
        }
        Err("unterminated string".into())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultPlanConfig::standard(4);
        let a = FaultPlan::generate(7, &cfg);
        let b = FaultPlan::generate(7, &cfg);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, &cfg);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn timeline_is_sorted_and_complete() {
        let cfg = FaultPlanConfig::standard(4);
        let plan = FaultPlan::generate(3, &cfg);
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        // 2 flaps (loss+restore each) + 2 wake windows + 2 evictions
        // + 2 storms + 2 ctx stalls.
        assert_eq!(plan.events.len(), 2 * 2 + 2 + 2 + 2 + 2);
        assert!(plan.max_cu().unwrap() < 4);
    }

    #[test]
    fn every_flap_is_paired() {
        let cfg = FaultPlanConfig::standard(2);
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            let losses: Vec<usize> = plan
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    FaultKind::CuLoss { cu } => Some(cu),
                    _ => None,
                })
                .collect();
            let restores: Vec<usize> = plan
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    FaultKind::CuRestore { cu } => Some(cu),
                    _ => None,
                })
                .collect();
            let mut l = losses.clone();
            let mut r = restores.clone();
            l.sort_unstable();
            r.sort_unstable();
            assert_eq!(l, r, "seed {seed}: every unplugged CU must return");
        }
    }

    #[test]
    fn resident_safe_plans_never_unplug() {
        let cfg = FaultPlanConfig::standard(4).resident_safe();
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            assert!(plan.max_cu().is_none(), "seed {seed} unplugged a CU");
            assert!(!plan.events.is_empty(), "other fault classes must stay");
        }
    }

    #[test]
    fn outages_respect_bounds() {
        let mut cfg = FaultPlanConfig::standard(4);
        cfg.cu_flaps = 1; // exactly one pair, so the outage is unambiguous
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &cfg);
            let loss = plan
                .events
                .iter()
                .find(|e| matches!(e.kind, FaultKind::CuLoss { .. }))
                .expect("one loss");
            let restore = plan
                .events
                .iter()
                .find(|e| matches!(e.kind, FaultKind::CuRestore { .. }))
                .expect("one restore");
            let outage = restore.at - loss.at;
            assert!(
                (cfg.flap_min..=cfg.flap_max).contains(&outage),
                "seed {seed}: outage {outage} out of bounds"
            );
        }
    }

    #[test]
    fn json_round_trips_every_fault_kind() {
        for seed in 0..10 {
            let plan = FaultPlan::generate(seed, &FaultPlanConfig::standard(4));
            let text = plan.to_json();
            let back = FaultPlan::from_json(&text).expect("round trip");
            assert_eq!(back, plan, "seed {seed}");
        }
    }

    #[test]
    fn json_parses_hand_written_plans() {
        let text = r#"{
            "seed": 9,
            "events": [
                {"kind": "cu_loss", "at": 100, "cu": 2},
                {"at": 200, "kind": "wake_chaos", "mode": "delay", "extra": 7, "window": 50},
                {"at": 300, "kind": "ctx_stall", "extra": 40, "window": 10}
            ]
        }"#;
        let plan = FaultPlan::from_json(text).expect("parse");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.events[0].kind, FaultKind::CuLoss { cu: 2 });
        assert_eq!(
            plan.events[1].kind,
            FaultKind::WakeChaos {
                mode: WakeChaosMode::Delay(7),
                window: 50
            }
        );
    }

    #[test]
    fn json_rejects_malformed_plans() {
        for (text, needle) in [
            ("", "unexpected"),
            ("{\"seed\": 1}", "missing key \"events\""),
            ("{\"seed\": 1, \"events\": [{}]}", "missing key"),
            (
                "{\"seed\": 1, \"events\": [{\"at\": 5, \"kind\": \"volcano\"}]}",
                "unknown fault kind",
            ),
            (
                "{\"seed\": 1, \"events\": [\
                 {\"at\": 9, \"kind\": \"cu_loss\", \"cu\": 0},\
                 {\"at\": 5, \"kind\": \"cu_restore\", \"cu\": 0}]}",
                "sorted",
            ),
            ("{\"seed\": 1, \"events\": []} trailing", "trailing"),
        ] {
            let err = FaultPlan::from_json(text).expect_err(text);
            assert!(err.contains(needle), "{text}: {err}");
        }
    }
}
