//! Chrome-Trace-Format / Perfetto timeline export over the trace stream.
//!
//! [`chrome_trace`] turns a recorded [`TraceRecord`] stream into the
//! `trace_event` JSON that `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly:
//!
//! * one process group per CU (`pid = cu + 1`), with one span slice per WG
//!   residency interval (dispatch or swap-in through swap-out completion or
//!   finish) on a per-WG thread track,
//! * an `occupancy` counter track per CU (resident WGs over time),
//! * a global `outstanding_atomics` counter track (issued minus completed),
//! * instant events for scheduling incidents (stall, sleep, swap-out start,
//!   sync fail, timeout, resume) on the WG's current track.
//!
//! Timestamps are microseconds at the paper's 2 GHz baseline clock, so one
//! cycle is 0.0005 µs; fractional timestamps are valid Chrome trace JSON.

use std::collections::{BTreeMap, HashSet};

use awg_sim::telemetry::chrome::TraceBuilder;
use awg_sim::{cycles_to_us, Cycle};

use crate::trace::{TraceEvent, TraceRecord};
use crate::wg::WgId;

/// Process id of the global (non-resident) track group.
const GPU_PID: u64 = 0;

fn cu_pid(cu: usize) -> u64 {
    cu as u64 + 1
}

/// Exports `records` as a Chrome-Trace-Format JSON document.
///
/// Residency intervals still open at the end of the stream are closed at
/// the last recorded cycle. The export is deterministic for a given record
/// stream: records are ordered by cycle with ties kept in recording order.
pub fn chrome_trace(records: &[TraceRecord], num_cus: usize) -> String {
    chrome_trace_builder(records, num_cus).finish()
}

/// Like [`chrome_trace`], but returns the open [`TraceBuilder`] so callers
/// can append extra tracks (e.g. the harness's cycle-attribution counter
/// track) before serializing. [`expected_counts`] accounts only for the
/// events this function emits; callers owe the delta for what they append.
pub fn chrome_trace_builder(records: &[TraceRecord], num_cus: usize) -> TraceBuilder {
    let mut records: Vec<TraceRecord> = records.to_vec();
    records.sort_by_key(|r| r.cycle);
    let end = records.last().map_or(0, |r| r.cycle);

    let mut b = TraceBuilder::new();
    b.process_name(GPU_PID, "GPU (non-resident)");
    for cu in 0..num_cus {
        b.process_name(cu_pid(cu), &format!("CU {cu}"));
    }

    let mut named: HashSet<(u64, u64)> = HashSet::new();
    // WG -> (residency start cycle, CU).
    let mut open: BTreeMap<WgId, (Cycle, usize)> = BTreeMap::new();
    let mut occupancy = vec![0i64; num_cus];
    let mut outstanding: i64 = 0;

    let mut name_thread = |b: &mut TraceBuilder, pid: u64, wg: WgId| {
        if named.insert((pid, u64::from(wg))) {
            b.thread_name(pid, u64::from(wg), &format!("WG {wg}"));
        }
    };
    let close_residency = |b: &mut TraceBuilder,
                           occupancy: &mut [i64],
                           wg: WgId,
                           start: Cycle,
                           cu: usize,
                           at: Cycle| {
        b.complete_slice(
            cu_pid(cu),
            u64::from(wg),
            &format!("WG {wg}"),
            "residency",
            cycles_to_us(start),
            cycles_to_us(at) - cycles_to_us(start),
            &[("wg", wg.to_string()), ("cu", cu.to_string())],
        );
        occupancy[cu] -= 1;
        b.counter(
            cu_pid(cu),
            "occupancy",
            cycles_to_us(at),
            &[("resident", occupancy[cu] as f64)],
        );
    };

    for r in &records {
        let ts = cycles_to_us(r.cycle);
        match r.event {
            TraceEvent::Dispatch { cu } | TraceEvent::SwapInStart { cu } => {
                if let Some((start, prev_cu)) = open.remove(&r.wg) {
                    // Defensive: a re-open without an observed close (e.g. a
                    // ring-bounded trace that evicted the close) ends the
                    // stale interval here.
                    close_residency(&mut b, &mut occupancy, r.wg, start, prev_cu, r.cycle);
                }
                open.insert(r.wg, (r.cycle, cu));
                occupancy[cu] += 1;
                b.counter(
                    cu_pid(cu),
                    "occupancy",
                    ts,
                    &[("resident", occupancy[cu] as f64)],
                );
            }
            TraceEvent::SwapOutDone | TraceEvent::Finish => {
                if let Some((start, cu)) = open.remove(&r.wg) {
                    name_thread(&mut b, cu_pid(cu), r.wg);
                    close_residency(&mut b, &mut occupancy, r.wg, start, cu, r.cycle);
                }
            }
            TraceEvent::AtomicIssue { .. } => {
                outstanding += 1;
                b.counter(
                    GPU_PID,
                    "outstanding_atomics",
                    ts,
                    &[("atomics", outstanding as f64)],
                );
            }
            TraceEvent::AtomicDone { .. } => {
                outstanding -= 1;
                b.counter(
                    GPU_PID,
                    "outstanding_atomics",
                    ts,
                    &[("atomics", outstanding as f64)],
                );
            }
            TraceEvent::Stall
            | TraceEvent::Sleep { .. }
            | TraceEvent::SwapOutStart
            | TraceEvent::SyncFail { .. }
            | TraceEvent::Timeout
            | TraceEvent::Resume => {
                let (pid, tid) = match open.get(&r.wg) {
                    Some(&(_, cu)) => (cu_pid(cu), u64::from(r.wg)),
                    None => (GPU_PID, u64::from(r.wg)),
                };
                name_thread(&mut b, pid, r.wg);
                let (name, args) = instant_details(r.event);
                b.instant(pid, tid, name, "sched", ts, &args);
            }
        }
    }
    // Close intervals still open when the stream ended (deadlocks, cycle
    // caps, or WGs mid-swap at completion).
    let still_open: Vec<(WgId, (Cycle, usize))> = open.into_iter().collect();
    for (wg, (start, cu)) in still_open {
        name_thread(&mut b, cu_pid(cu), wg);
        close_residency(&mut b, &mut occupancy, wg, start, cu, end);
    }
    b
}

fn instant_details(event: TraceEvent) -> (&'static str, Vec<(&'static str, String)>) {
    match event {
        TraceEvent::Stall => ("stall", Vec::new()),
        TraceEvent::Sleep { cycles } => ("sleep", vec![("cycles", cycles.to_string())]),
        TraceEvent::SwapOutStart => ("swap-out", Vec::new()),
        TraceEvent::SyncFail { addr, expected } => (
            "sync-fail",
            vec![
                ("addr", addr.to_string()),
                ("expected", expected.to_string()),
            ],
        ),
        TraceEvent::Timeout => ("timeout", Vec::new()),
        TraceEvent::Resume => ("resume", Vec::new()),
        _ => unreachable!("only incident events have instant details"),
    }
}

/// Expected event counts for a record stream, mirroring the export rules.
///
/// Used by tests (and the CI smoke check) to assert that an exported
/// document accounts for every in-memory trace record:
/// `slices = opens`, `counters = 2 * opens + atomic events`,
/// `instants = incident events`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineCounts {
    /// Residency slices (`ph:"X"`).
    pub slices: u64,
    /// Counter samples (`ph:"C"`).
    pub counters: u64,
    /// Instant events (`ph:"i"`).
    pub instants: u64,
}

/// Computes the event counts [`chrome_trace`] will emit for `records`.
pub fn expected_counts(records: &[TraceRecord]) -> TimelineCounts {
    let mut opens = 0u64;
    let mut atomics = 0u64;
    let mut instants = 0u64;
    for r in records {
        match r.event {
            TraceEvent::Dispatch { .. } | TraceEvent::SwapInStart { .. } => opens += 1,
            TraceEvent::AtomicIssue { .. } | TraceEvent::AtomicDone { .. } => atomics += 1,
            TraceEvent::Stall
            | TraceEvent::Sleep { .. }
            | TraceEvent::SwapOutStart
            | TraceEvent::SyncFail { .. }
            | TraceEvent::Timeout
            | TraceEvent::Resume => instants += 1,
            TraceEvent::SwapOutDone | TraceEvent::Finish => {}
        }
    }
    TimelineCounts {
        slices: opens,
        counters: 2 * opens + atomics,
        instants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_sim::json;

    fn rec(cycle: Cycle, wg: WgId, event: TraceEvent) -> TraceRecord {
        TraceRecord { cycle, wg, event }
    }

    fn count_ph(doc: &json::Value, ph: &str) -> usize {
        doc.get("traceEvents")
            .and_then(|e| e.as_array())
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
            .count()
    }

    #[test]
    fn residency_slices_open_and_close() {
        let records = vec![
            rec(0, 0, TraceEvent::Dispatch { cu: 0 }),
            rec(10, 1, TraceEvent::Dispatch { cu: 1 }),
            rec(50, 0, TraceEvent::SwapOutStart),
            rec(90, 0, TraceEvent::SwapOutDone),
            rec(120, 0, TraceEvent::SwapInStart { cu: 1 }),
            rec(200, 0, TraceEvent::Finish),
            rec(260, 1, TraceEvent::Finish),
        ];
        let doc = json::parse(&chrome_trace(&records, 2)).unwrap();
        let expected = expected_counts(&records);
        assert_eq!(count_ph(&doc, "X") as u64, expected.slices);
        assert_eq!(expected.slices, 3); // two dispatches + one swap-in
        assert_eq!(count_ph(&doc, "C") as u64, expected.counters);
        assert_eq!(count_ph(&doc, "i") as u64, expected.instants);
    }

    #[test]
    fn open_residency_is_closed_at_stream_end() {
        let records = vec![
            rec(0, 4, TraceEvent::Dispatch { cu: 0 }),
            rec(500, 4, TraceEvent::Stall),
        ];
        let doc = json::parse(&chrome_trace(&records, 1)).unwrap();
        assert_eq!(count_ph(&doc, "X"), 1);
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        // 500 cycles at 2 GHz = 0.25 µs.
        assert!((slice.get("dur").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-9);
        assert_eq!(slice.get("ts").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn atomics_counter_tracks_outstanding() {
        let records = vec![
            rec(0, 0, TraceEvent::AtomicIssue { addr: 64 }),
            rec(5, 1, TraceEvent::AtomicIssue { addr: 64 }),
            rec(30, 0, TraceEvent::AtomicDone { addr: 64 }),
        ];
        let doc = json::parse(&chrome_trace(&records, 1)).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let values: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("atomics")))
            .filter_map(|v| v.as_f64())
            .collect();
        assert_eq!(values, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let doc = json::parse(&chrome_trace(&[], 2)).unwrap();
        // Metadata only: one global process plus one per CU.
        assert_eq!(count_ph(&doc, "M"), 3);
        assert_eq!(count_ph(&doc, "X"), 0);
    }
}
