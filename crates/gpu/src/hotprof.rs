//! Host-side hot-path profiler for the event core.
//!
//! [`HotProfile`] counts the event loop's *real work* — events popped and
//! pushed, calendar depth high-water, per-event-type dispatch counts and
//! wall-time, wake-scan and dispatch-scan passes — so that the planned
//! event-core rewrite (ROADMAP item 1) is gated on measurements, not
//! guesses. The machine folds memory-system and policy counters in at end
//! of run, producing a [`HotReport`] with a ranked hotspot table whose
//! wall-time fractions sum to 100% by construction.
//!
//! Zero-cost-when-off: the machine holds an `Option<Box<HotProfile>>` and
//! every hook is behind an `if let`. Like the telemetry hub's
//! `SelfProfile`, the profiler is host-only state — it is never serialized
//! into checkpoints and never feeds the digest trail, so enabling it
//! cannot perturb simulated behaviour.

use std::time::Duration;

use awg_sim::json::Value;
use awg_sim::Cycle;

/// Number of event-type lanes (one per [`Event`](crate::machine) variant,
/// in save-tag order).
pub const EVENT_LANES: usize = 12;

/// Lane names, indexed by the event's stable save tag.
pub const LANE_NAMES: [&str; EVENT_LANES] = [
    "continue",
    "response",
    "wake-deliver",
    "wait-timeout",
    "swap-out-done",
    "swap-in-done",
    "dispatch-done",
    "cp-tick",
    "resource-loss",
    "resource-restore",
    "progress-check",
    "fault",
];

/// Live hot-path counters, updated from inside the event loop.
#[derive(Debug, Clone, Default)]
pub struct HotProfile {
    /// Events popped from the calendar.
    pub events_popped: u64,
    /// Calendar length high-water mark (heap depth after each handle).
    pub heap_high_water: usize,
    /// Per-event-type handled counts, indexed by save tag.
    pub lane_counts: [u64; EVENT_LANES],
    /// Per-event-type handler wall-clock, indexed by save tag.
    pub lane_wall: [Duration; EVENT_LANES],
    /// Wake-scan passes (`apply_wakes` invocations).
    pub wake_scans: u64,
    /// Wakes carried by those passes (before chaos perturbation).
    pub wakes_applied: u64,
    /// Dispatch-scan passes (`try_dispatch` invocations).
    pub dispatch_scans: u64,
    /// WG admissions those passes produced (dispatches + swap-ins).
    pub dispatch_admissions: u64,
    /// `EventQueue::scheduled_total()` when profiling was enabled, so the
    /// report can derive pushes that happened while the profiler watched.
    pub sched_base: u64,
}

impl HotProfile {
    /// Attributes one handled event to its lane.
    #[inline]
    pub fn note_event(&mut self, lane: usize, wall: Duration) {
        self.lane_counts[lane] += 1;
        self.lane_wall[lane] += wall;
    }
}

/// One ranked hotspot row: where the host's time inside `handle()` went.
#[derive(Debug, Clone)]
pub struct HotLane {
    /// Event-type name (see [`LANE_NAMES`]).
    pub name: &'static str,
    /// Events of this type handled.
    pub count: u64,
    /// Wall-clock spent handling them.
    pub wall: Duration,
    /// Share of the total attributed wall-clock, in `[0, 1]`.
    pub fraction: f64,
}

/// End-of-run hot-path summary: the ranked per-event-type table plus the
/// event-loop, wake/dispatch-scan, memory-system, and allocation-proxy
/// counters the rewrite must not regress.
#[derive(Debug, Clone)]
pub struct HotReport {
    /// Simulated cycles the profiled run covered.
    pub sim_cycles: Cycle,
    /// Host wall-clock of the whole run.
    pub total_wall: Duration,
    /// Events popped from the calendar.
    pub events_popped: u64,
    /// Events pushed into the calendar while profiling.
    pub events_pushed: u64,
    /// Calendar length high-water mark.
    pub heap_high_water: usize,
    /// Per-event-type rows, sorted by wall-clock descending.
    pub lanes: Vec<HotLane>,
    /// Wake-scan passes.
    pub wake_scans: u64,
    /// Wakes carried by those passes.
    pub wakes_applied: u64,
    /// Dispatch-scan passes.
    pub dispatch_scans: u64,
    /// WG admissions those passes produced.
    pub dispatch_admissions: u64,
    /// L2 `(atomics, reads, writes)` — bank-queue operations.
    pub l2_ops: (u64, u64, u64),
    /// SyncMon lines monitored at end of run.
    pub monitored_lines: usize,
    /// SyncMon/CP condition probes (summed across policy monitor cores;
    /// zero for policies without a monitor).
    pub sync_probes: u64,
    /// Retained trace records — the run's dominant allocation proxy.
    pub trace_records: usize,
}

impl HotReport {
    /// Builds the ranked report from live counters plus machine-side
    /// context. `lane_wall` fractions are normalized over the sum of all
    /// lanes, so they total 100% (up to rounding) whenever any wall time
    /// was attributed.
    #[allow(clippy::too_many_arguments)] // one-shot assembly from the machine
    pub(crate) fn assemble(
        prof: &HotProfile,
        sim_cycles: Cycle,
        total_wall: Duration,
        sched_total: u64,
        l2_ops: (u64, u64, u64),
        monitored_lines: usize,
        sync_probes: u64,
        trace_records: usize,
    ) -> Self {
        let attributed: Duration = prof.lane_wall.iter().sum();
        let mut lanes: Vec<HotLane> = (0..EVENT_LANES)
            .map(|i| HotLane {
                name: LANE_NAMES[i],
                count: prof.lane_counts[i],
                wall: prof.lane_wall[i],
                fraction: if attributed > Duration::ZERO {
                    prof.lane_wall[i].as_secs_f64() / attributed.as_secs_f64()
                } else {
                    0.0
                },
            })
            .collect();
        lanes.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.name.cmp(b.name)));
        HotReport {
            sim_cycles,
            total_wall,
            events_popped: prof.events_popped,
            events_pushed: sched_total.saturating_sub(prof.sched_base),
            heap_high_water: prof.heap_high_water,
            lanes,
            wake_scans: prof.wake_scans,
            wakes_applied: prof.wakes_applied,
            dispatch_scans: prof.dispatch_scans,
            dispatch_admissions: prof.dispatch_admissions,
            l2_ops,
            monitored_lines,
            sync_probes,
            trace_records,
        }
    }

    /// Simulated cycles per host second (0.0 when wall time is zero).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Serializes the report with the hand-rolled JSON codec.
    pub fn to_json(&self) -> Value {
        let lanes: Vec<Value> = self
            .lanes
            .iter()
            .map(|l| {
                Value::Object(vec![
                    ("name".to_owned(), Value::Str(l.name.to_owned())),
                    ("count".to_owned(), Value::Num(l.count as f64)),
                    ("wall_ns".to_owned(), Value::Num(l.wall.as_nanos() as f64)),
                    ("fraction".to_owned(), Value::Num(l.fraction)),
                ])
            })
            .collect();
        let (atomics, reads, writes) = self.l2_ops;
        Value::Object(vec![
            ("profile".to_owned(), Value::Str("awg-hotspot".to_owned())),
            ("sim_cycles".to_owned(), Value::Num(self.sim_cycles as f64)),
            (
                "total_wall_ns".to_owned(),
                Value::Num(self.total_wall.as_nanos() as f64),
            ),
            (
                "mcycles_per_sec".to_owned(),
                Value::Num(self.cycles_per_sec() / 1e6),
            ),
            (
                "events_popped".to_owned(),
                Value::Num(self.events_popped as f64),
            ),
            (
                "events_pushed".to_owned(),
                Value::Num(self.events_pushed as f64),
            ),
            (
                "heap_high_water".to_owned(),
                Value::Num(self.heap_high_water as f64),
            ),
            ("lanes".to_owned(), Value::Array(lanes)),
            ("wake_scans".to_owned(), Value::Num(self.wake_scans as f64)),
            (
                "wakes_applied".to_owned(),
                Value::Num(self.wakes_applied as f64),
            ),
            (
                "dispatch_scans".to_owned(),
                Value::Num(self.dispatch_scans as f64),
            ),
            (
                "dispatch_admissions".to_owned(),
                Value::Num(self.dispatch_admissions as f64),
            ),
            ("l2_atomics".to_owned(), Value::Num(atomics as f64)),
            ("l2_reads".to_owned(), Value::Num(reads as f64)),
            ("l2_writes".to_owned(), Value::Num(writes as f64)),
            (
                "monitored_lines".to_owned(),
                Value::Num(self.monitored_lines as f64),
            ),
            (
                "sync_probes".to_owned(),
                Value::Num(self.sync_probes as f64),
            ),
            (
                "trace_records".to_owned(),
                Value::Num(self.trace_records as f64),
            ),
        ])
    }
}

impl std::fmt::Display for HotReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "hot-profile: {:.3} s wall, {} cycles ({:.2} Mcycles/s)",
            self.total_wall.as_secs_f64(),
            self.sim_cycles,
            self.cycles_per_sec() / 1e6,
        )?;
        writeln!(
            f,
            "  event loop: {} popped, {} pushed, calendar high-water {}",
            self.events_popped, self.events_pushed, self.heap_high_water
        )?;
        writeln!(
            f,
            "  scans: {} wake passes ({} wakes), {} dispatch passes ({} admissions)",
            self.wake_scans, self.wakes_applied, self.dispatch_scans, self.dispatch_admissions
        )?;
        let (atomics, reads, writes) = self.l2_ops;
        writeln!(
            f,
            "  l2 bank ops: {atomics} atomics, {reads} reads, {writes} writes; \
             {} monitored lines, {} sync probes",
            self.monitored_lines, self.sync_probes
        )?;
        writeln!(f, "  alloc proxy: {} trace records", self.trace_records)?;
        writeln!(
            f,
            "  {:<18} {:>10} {:>12} {:>7}",
            "hotspot", "events", "wall ms", "share"
        )?;
        for lane in &self.lanes {
            writeln!(
                f,
                "  {:<18} {:>10} {:>12.3} {:>6.1}%",
                lane.name,
                lane.count,
                lane.wall.as_secs_f64() * 1e3,
                lane.fraction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_and_rank_descending() {
        let mut prof = HotProfile {
            sched_base: 10,
            ..HotProfile::default()
        };
        prof.note_event(0, Duration::from_micros(300));
        prof.note_event(0, Duration::from_micros(200));
        prof.note_event(1, Duration::from_micros(400));
        prof.note_event(7, Duration::from_micros(100));
        prof.events_popped = 4;
        prof.heap_high_water = 9;
        let report = HotReport::assemble(
            &prof,
            50_000,
            Duration::from_millis(2),
            25,
            (5, 6, 7),
            3,
            11,
            42,
        );
        let total: f64 = report.lanes.iter().map(|l| l.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 100%: {total}");
        assert!(
            report.lanes.windows(2).all(|w| w[0].wall >= w[1].wall),
            "ranked by wall descending"
        );
        assert_eq!(report.lanes[0].name, "continue");
        assert_eq!(report.lanes[0].count, 2);
        assert_eq!(report.events_pushed, 15);
        assert_eq!(report.heap_high_water, 9);
    }

    #[test]
    fn report_json_round_trips() {
        let mut prof = HotProfile::default();
        prof.note_event(2, Duration::from_micros(50));
        let report = HotReport::assemble(
            &prof,
            1_000,
            Duration::from_micros(80),
            7,
            (1, 2, 3),
            0,
            0,
            5,
        );
        let text = report.to_json().to_json();
        let parsed = awg_sim::json::parse(&text).expect("profile JSON parses");
        assert_eq!(
            parsed.get("profile").and_then(|v| v.as_str()),
            Some("awg-hotspot")
        );
        assert_eq!(
            parsed.get("events_pushed").and_then(Value::as_f64),
            Some(7.0)
        );
        let lanes = parsed.get("lanes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(lanes.len(), EVENT_LANES);
        assert_eq!(
            lanes[0].get("name").and_then(|v| v.as_str()),
            Some("wake-deliver")
        );
        let text2 = report.to_json().to_json();
        assert_eq!(text, text2, "serialization is deterministic");
    }

    #[test]
    fn display_renders_every_lane_and_counter() {
        let mut prof = HotProfile::default();
        prof.note_event(6, Duration::from_micros(10));
        let report =
            HotReport::assemble(&prof, 100, Duration::from_micros(20), 1, (0, 0, 0), 0, 0, 0);
        let text = report.to_string();
        for name in LANE_NAMES {
            assert!(text.contains(name), "{text}");
        }
        assert!(text.contains("calendar high-water"), "{text}");
        assert!(text.contains("share"), "{text}");
    }
}
