//! Typed errors for user-reachable simulator failures.
//!
//! Library-internal bugs still panic (they indicate a broken simulator, not
//! broken input), but everything a CLI user can trigger — malformed
//! configurations, unparsable fault plans, invariant-oracle violations —
//! surfaces as a [`SimError`] so front ends can map each class to a
//! distinct exit code instead of a backtrace.

use awg_sim::Cycle;

use crate::oracle::InvariantViolation;
use crate::watchdog::CancelCause;

/// A user-reachable simulator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel, machine, or fault-plan configuration is invalid
    /// (e.g. zero work-groups, a WG too large for any CU, a plan that
    /// unplugs a CU the machine does not have).
    Config(String),
    /// A serialized fault plan could not be parsed.
    PlanFormat(String),
    /// The invariant oracle caught the machine violating a machine-wide
    /// invariant mid-run.
    Invariant(InvariantViolation),
    /// A campaign job panicked. The sweep pool catches the panic so one bad
    /// run becomes a typed row in the report instead of killing the whole
    /// campaign.
    JobPanic {
        /// Stable key of the job that panicked (e.g. `fig14/SPM_G/AWG`).
        job: String,
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// A campaign job exceeded its watchdog limit (wall-clock deadline or
    /// simulated-cycle budget) and exhausted its retries. The supervisor
    /// turns wedged jobs into this typed row so the rest of the campaign
    /// can finish.
    JobTimeout {
        /// Stable key of the job that timed out.
        job: String,
        /// Simulated cycle at which the run was cancelled.
        at: Cycle,
        /// Which watchdog limit fired.
        cause: CancelCause,
    },
    /// A campaign job was abandoned before producing a result because the
    /// campaign was interrupted (SIGINT/SIGTERM).
    JobCancelled {
        /// Stable key of the abandoned job.
        job: String,
    },
    /// A checkpoint snapshot could not be restored: the file is truncated,
    /// corrupted (CRC mismatch), from an incompatible format version, from a
    /// different run configuration, or decodes into an inconsistent machine.
    /// Restore fails closed with this error rather than resuming a machine
    /// that could silently diverge.
    CorruptCheckpoint(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "{msg}"),
            SimError::PlanFormat(msg) => write!(f, "fault plan parse error: {msg}"),
            SimError::Invariant(v) => write!(f, "invariant violation: {v}"),
            SimError::JobPanic { job, message } => {
                write!(f, "job '{job}' panicked: {message}")
            }
            SimError::JobTimeout { job, at, cause } => {
                write!(f, "job '{job}' timed out at cycle {at}: {cause}")
            }
            SimError::JobCancelled { job } => {
                write!(f, "job '{job}' cancelled before completion")
            }
            SimError::CorruptCheckpoint(msg) => {
                write!(f, "corrupt checkpoint: {msg}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InvariantKind;

    #[test]
    fn display_is_actionable() {
        let e = SimError::Config("kernel needs at least one WG".into());
        assert_eq!(e.to_string(), "kernel needs at least one WG");
        let e = SimError::PlanFormat("expected '{'".into());
        assert!(e.to_string().contains("parse error"));
        let e = SimError::Invariant(InvariantViolation {
            at: 42,
            kind: InvariantKind::UnreachableWaiter,
            detail: "WG 3 stalled with no wake path".into(),
        });
        let text = e.to_string();
        assert!(text.contains("cycle 42"), "{text}");
        assert!(text.contains("WG 3"), "{text}");
        let e = SimError::JobPanic {
            job: "fig14/SPM_G/AWG".into(),
            message: "index out of bounds".into(),
        };
        let text = e.to_string();
        assert!(text.contains("fig14/SPM_G/AWG"), "{text}");
        assert!(text.contains("panicked"), "{text}");
        assert!(text.contains("index out of bounds"), "{text}");
    }

    #[test]
    fn timeout_and_cancel_display_the_job_key() {
        let e = SimError::JobTimeout {
            job: "chaos/TB_LG/Baseline".into(),
            at: 123_456,
            cause: CancelCause::CycleBudget(100_000),
        };
        let text = e.to_string();
        assert!(text.contains("chaos/TB_LG/Baseline"), "{text}");
        assert!(text.contains("timed out at cycle 123456"), "{text}");
        assert!(text.contains("budget 100000"), "{text}");

        let e = SimError::JobCancelled {
            job: "fig5/SPM_G".into(),
        };
        let text = e.to_string();
        assert!(text.contains("fig5/SPM_G"), "{text}");
        assert!(text.contains("cancelled"), "{text}");
    }

    #[test]
    fn corrupt_checkpoint_display_names_the_cause() {
        let e = SimError::CorruptCheckpoint("section crc mismatch".into());
        let text = e.to_string();
        assert!(text.contains("corrupt checkpoint"), "{text}");
        assert!(text.contains("crc mismatch"), "{text}");
    }
}
