//! Typed errors for user-reachable simulator failures.
//!
//! Library-internal bugs still panic (they indicate a broken simulator, not
//! broken input), but everything a CLI user can trigger — malformed
//! configurations, unparsable fault plans, invariant-oracle violations —
//! surfaces as a [`SimError`] so front ends can map each class to a
//! distinct exit code instead of a backtrace.

use crate::oracle::InvariantViolation;

/// A user-reachable simulator failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel, machine, or fault-plan configuration is invalid
    /// (e.g. zero work-groups, a WG too large for any CU, a plan that
    /// unplugs a CU the machine does not have).
    Config(String),
    /// A serialized fault plan could not be parsed.
    PlanFormat(String),
    /// The invariant oracle caught the machine violating a machine-wide
    /// invariant mid-run.
    Invariant(InvariantViolation),
    /// A campaign job panicked. The sweep pool catches the panic so one bad
    /// run becomes a typed row in the report instead of killing the whole
    /// campaign.
    JobPanic {
        /// Stable key of the job that panicked (e.g. `fig14/SPM_G/AWG`).
        job: String,
        /// The panic payload, when it carried a message.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "{msg}"),
            SimError::PlanFormat(msg) => write!(f, "fault plan parse error: {msg}"),
            SimError::Invariant(v) => write!(f, "invariant violation: {v}"),
            SimError::JobPanic { job, message } => {
                write!(f, "job '{job}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::InvariantKind;

    #[test]
    fn display_is_actionable() {
        let e = SimError::Config("kernel needs at least one WG".into());
        assert_eq!(e.to_string(), "kernel needs at least one WG");
        let e = SimError::PlanFormat("expected '{'".into());
        assert!(e.to_string().contains("parse error"));
        let e = SimError::Invariant(InvariantViolation {
            at: 42,
            kind: InvariantKind::UnreachableWaiter,
            detail: "WG 3 stalled with no wake path".into(),
        });
        let text = e.to_string();
        assert!(text.contains("cycle 42"), "{text}");
        assert!(text.contains("WG 3"), "{text}");
        let e = SimError::JobPanic {
            job: "fig14/SPM_G/AWG".into(),
            message: "index out of bounds".into(),
        };
        let text = e.to_string();
        assert!(text.contains("fig14/SPM_G/AWG"), "{text}");
        assert!(text.contains("panicked"), "{text}");
        assert!(text.contains("index out of bounds"), "{text}");
    }
}
