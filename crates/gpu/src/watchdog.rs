//! Cooperative cancellation for simulation runs.
//!
//! A campaign job that wedges — a genuine scheduler bug spinning the event
//! loop forever, or a chaos plan that strands every waiter below the
//! deadlock detector's radar — must become a typed row in the report, not a
//! hung campaign. The supervisor arms each job with a [`Watchdog`] carrying
//! a wall-clock deadline and/or a simulated-cycle budget; the machine's
//! event loop polls it and aborts the run with
//! [`RunOutcome::Cancelled`](crate::RunOutcome::Cancelled) when a limit is
//! exceeded, preserving the usual forensic hang report.
//!
//! The same mechanism implements graceful interruption: SIGINT/SIGTERM
//! handlers raise a process-wide [cancel flag](request_global_cancel) that
//! every armed watchdog observes, so in-flight simulations stop at the next
//! event boundary instead of running to completion after the user asked the
//! campaign to stop.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use awg_sim::Cycle;

/// Why a run was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The process-wide cancel flag was raised (SIGINT/SIGTERM).
    Interrupt,
    /// The job's host wall-clock deadline elapsed.
    WallDeadline(Duration),
    /// The job's simulated-cycle budget was exhausted.
    CycleBudget(Cycle),
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelCause::Interrupt => write!(f, "interrupted"),
            CancelCause::WallDeadline(limit) => {
                write!(f, "wall-clock deadline {limit:.2?} exceeded")
            }
            CancelCause::CycleBudget(budget) => {
                write!(f, "simulated-cycle budget {budget} exhausted")
            }
        }
    }
}

/// The process-wide cancel flag. Raised (only) by front-end signal
/// handlers; observed by every armed [`Watchdog`].
static GLOBAL_CANCEL: AtomicBool = AtomicBool::new(false);

/// Raises the process-wide cancel flag.
///
/// This performs a single atomic store and nothing else, so it is safe to
/// call from a POSIX signal handler (it is async-signal-safe).
pub fn request_global_cancel() {
    GLOBAL_CANCEL.store(true, Ordering::Relaxed);
}

/// Whether the process-wide cancel flag has been raised.
pub fn global_cancelled() -> bool {
    GLOBAL_CANCEL.load(Ordering::Relaxed)
}

/// Lowers the process-wide cancel flag (test support; front ends have no
/// reason to un-cancel).
pub fn reset_global_cancel() {
    GLOBAL_CANCEL.store(false, Ordering::Relaxed);
}

/// How many watchdog polls elapse between (comparatively costly)
/// `Instant::now()` reads. The interrupt flag and the cycle budget are
/// checked on every poll; both are a handful of nanoseconds.
const WALL_POLL_PERIOD: u32 = 1024;

/// Per-run cancellation limits, polled by the machine's event loop.
///
/// An unarmed watchdog (no deadline, no budget) still observes the global
/// interrupt flag, so installing one is never wrong.
#[derive(Debug, Clone)]
pub struct Watchdog {
    wall_limit: Option<Duration>,
    deadline: Option<Instant>,
    cycle_budget: Option<Cycle>,
    polls: Cell<u32>,
}

impl Watchdog {
    /// A watchdog with the given wall-clock and simulated-cycle limits.
    /// The wall-clock deadline starts counting immediately.
    pub fn new(wall_limit: Option<Duration>, cycle_budget: Option<Cycle>) -> Self {
        Watchdog {
            wall_limit,
            deadline: wall_limit.map(|d| Instant::now() + d),
            cycle_budget,
            polls: Cell::new(0),
        }
    }

    /// A watchdog with no deadline and no budget: it only observes the
    /// process-wide interrupt flag.
    pub fn unarmed() -> Self {
        Watchdog::new(None, None)
    }

    /// The simulated-cycle budget this watchdog enforces, if any.
    pub fn cycle_budget(&self) -> Option<Cycle> {
        self.cycle_budget
    }

    /// The wall-clock limit this watchdog enforces, if any.
    pub fn wall_limit(&self) -> Option<Duration> {
        self.wall_limit
    }

    /// Polls the watchdog at simulated time `cycle`. Returns the cancel
    /// cause when a limit is exceeded or the global flag is raised.
    ///
    /// Cheap by construction: the cycle comparison and the atomic load run
    /// on every call; `Instant::now()` only every `WALL_POLL_PERIOD`
    /// (1024) calls.
    pub fn check(&self, cycle: Cycle) -> Option<CancelCause> {
        if let Some(budget) = self.cycle_budget {
            if cycle > budget {
                return Some(CancelCause::CycleBudget(budget));
            }
        }
        if global_cancelled() {
            return Some(CancelCause::Interrupt);
        }
        let polls = self.polls.get().wrapping_add(1);
        self.polls.set(polls);
        if polls.is_multiple_of(WALL_POLL_PERIOD) {
            if let (Some(deadline), Some(limit)) = (self.deadline, self.wall_limit) {
                if Instant::now() >= deadline {
                    return Some(CancelCause::WallDeadline(limit));
                }
            }
        }
        None
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::unarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_watchdog_never_fires() {
        let wd = Watchdog::unarmed();
        for cycle in [0, 1_000_000, u64::MAX] {
            assert_eq!(wd.check(cycle), None);
        }
    }

    #[test]
    fn cycle_budget_fires_past_the_budget() {
        let wd = Watchdog::new(None, Some(500));
        assert_eq!(wd.check(0), None);
        assert_eq!(wd.check(500), None, "the budget cycle itself is allowed");
        assert_eq!(wd.check(501), Some(CancelCause::CycleBudget(500)));
    }

    #[test]
    fn zero_wall_deadline_fires_within_a_poll_period() {
        let wd = Watchdog::new(Some(Duration::ZERO), None);
        let mut fired = None;
        for _ in 0..=WALL_POLL_PERIOD {
            if let Some(cause) = wd.check(1) {
                fired = Some(cause);
                break;
            }
        }
        assert_eq!(fired, Some(CancelCause::WallDeadline(Duration::ZERO)));
    }

    #[test]
    fn global_cancel_is_observed_and_resettable() {
        reset_global_cancel();
        let wd = Watchdog::unarmed();
        assert_eq!(wd.check(1), None);
        request_global_cancel();
        assert!(global_cancelled());
        assert_eq!(wd.check(1), Some(CancelCause::Interrupt));
        reset_global_cancel();
        assert_eq!(wd.check(1), None);
    }

    #[test]
    fn causes_display_their_limits() {
        assert_eq!(CancelCause::Interrupt.to_string(), "interrupted");
        let wall = CancelCause::WallDeadline(Duration::from_secs(30)).to_string();
        assert!(wall.contains("30"), "{wall}");
        let budget = CancelCause::CycleBudget(1_000_000).to_string();
        assert!(budget.contains("1000000"), "{budget}");
    }
}
