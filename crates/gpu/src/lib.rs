//! GPU machine model and timing simulator for the AWG reproduction.
//!
//! This crate is the simulator the paper built in gem5 (§III): a
//! tightly-coupled APU with the Table 1 configuration. It executes kernel
//! programs (crate `awg-isa`) over the memory hierarchy (crate `awg-mem`)
//! with full event-driven timing, and delegates every *waiting* decision to
//! a pluggable [`SchedPolicy`] — the policy family itself (Baseline, Sleep,
//! Timeout, MonRS/MonR/MonNR, AWG) lives in crate `awg-core`.
//!
//! The machine models what the paper depends on:
//!
//! * work-group dispatch limited by per-CU wavefront/LDS/VGPR budgets,
//! * atomics performed at the banked shared L2 (contention serializes),
//! * waiting atomics and the separate `wait` instruction (with its
//!   window-of-vulnerability race, Fig 10),
//! * WG context save/restore as real DRAM traffic proportional to the
//!   context size (Fig 5),
//! * mid-kernel resource loss (the §VI oversubscribed experiment),
//! * deadlock/livelock detection so the Fig 15 "DEADLOCK" outcomes are
//!   reported rather than hanging the host.
//!
//! # Example
//!
//! ```
//! use awg_gpu::{BusyWaitPolicy, Gpu, GpuConfig, Kernel, RunOutcome, WgResources};
//! use awg_isa::{ProgramBuilder, Reg};
//!
//! // Every WG atomically increments a counter once, then halts.
//! let mut b = ProgramBuilder::new("count");
//! b.atom_add(Reg::R0, 4096u64, 1i64);
//! b.halt();
//! let kernel = Kernel::new(b.build().unwrap(), 16, WgResources::default());
//!
//! let mut gpu = Gpu::new(GpuConfig::isca2020_baseline(), kernel, Box::new(BusyWaitPolicy::new()));
//! match gpu.run() {
//!     RunOutcome::Completed(summary) => {
//!         assert_eq!(gpu.backing().load(4096), 16);
//!         assert!(summary.cycles > 0);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod cu;
pub mod error;
pub mod fault;
pub mod hotprof;
pub mod machine;
pub mod oracle;
pub mod policy;
pub mod result;
pub mod timeline;
pub mod trace;
pub mod watchdog;
pub mod wg;

pub use checkpoint::{
    read_checkpoint, restore_into, write_checkpoint, CheckpointImage, CheckpointSpec,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use config::{GpuConfig, Kernel, WgResources, CONTEXT_BASE};
pub use cu::Cu;
pub use error::SimError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, WakeChaosMode};
pub use hotprof::{HotLane, HotProfile, HotReport, EVENT_LANES, LANE_NAMES};
pub use machine::Gpu;
pub use oracle::{InvariantKind, InvariantViolation};
pub use policy::{
    BusyWaitPolicy, MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy,
    SyncCond, SyncFail, SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, WaiterStructure,
    Wake,
};
pub use result::{HangReport, RunOutcome, RunSummary, WgWaitInfo};
pub use timeline::{chrome_trace, chrome_trace_builder, expected_counts, TimelineCounts};
pub use trace::{Trace, TraceEvent, TraceFilter, TraceRecord};
pub use watchdog::{
    global_cancelled, request_global_cancel, reset_global_cancel, CancelCause, Watchdog,
};
pub use wg::{WgId, WgState};
