//! GPU configuration (Table 1) and kernel descriptors.

use std::sync::Arc;

use awg_mem::{Addr, CacheConfig, DramConfig, L2Config};
use awg_sim::Cycle;

use awg_isa::Program;

/// Base address of the per-WG context save area, far above any workload
/// allocation.
pub const CONTEXT_BASE: Addr = 1 << 40;

/// The machine configuration.
///
/// Defaults mirror the paper's Table 1 via [`GpuConfig::isca2020_baseline`].
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of compute units (Table 1: 8).
    pub num_cus: usize,
    /// SIMD units per CU (Table 1: 2).
    pub simds_per_cu: usize,
    /// Lanes per SIMD (Table 1: 64).
    pub simd_width: usize,
    /// Wavefront slots per SIMD (Table 1: 20).
    pub wavefronts_per_simd: usize,
    /// LDS (scratchpad) bytes per CU (GCN: 64 KB).
    pub lds_per_cu: u32,
    /// Vector registers per SIMD, in per-wavefront allocation units
    /// (GCN: 256 VGPRs × 64 lanes per SIMD).
    pub vgprs_per_simd: u32,
    /// Per-CU L1 configuration.
    pub l1: CacheConfig,
    /// Shared L2 configuration.
    pub l2: L2Config,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Cycles to issue one instruction from a wavefront.
    pub issue_cycles: Cycle,
    /// Fixed cost of an intra-WG barrier join…
    pub barrier_base_cycles: Cycle,
    /// …plus this much per wavefront in the WG.
    pub barrier_per_wf_cycles: Cycle,
    /// WG dispatch latency (resources reserved → first instruction).
    pub dispatch_cycles: Cycle,
    /// Fixed context-switch overhead on top of the context memory traffic
    /// (CP firmware work, pipeline drain).
    pub ctx_switch_overhead: Cycle,
    /// Latency from a SyncMon condition-met detection at the L2 to a stalled
    /// WG restarting on its CU (the resume message, step ❺–❻ in Fig 12).
    pub resume_latency: Cycle,
    /// Declare deadlock after this many cycles without global progress.
    pub quiescence_cycles: Cycle,
    /// Hard simulation cap.
    pub max_cycles: Cycle,
}

impl GpuConfig {
    /// The paper's baseline GPU model (Table 1).
    pub fn isca2020_baseline() -> Self {
        GpuConfig {
            num_cus: 8,
            simds_per_cu: 2,
            simd_width: 64,
            wavefronts_per_simd: 20,
            lds_per_cu: 64 * 1024,
            vgprs_per_simd: 256,
            l1: CacheConfig::l1_isca2020(),
            l2: L2Config::isca2020(),
            dram: DramConfig::isca2020(),
            issue_cycles: 4,
            barrier_base_cycles: 16,
            barrier_per_wf_cycles: 4,
            dispatch_cycles: 200,
            ctx_switch_overhead: 500,
            resume_latency: 50,
            quiescence_cycles: 1_000_000,
            max_cycles: 2_000_000_000,
        }
    }

    /// Wavefront slots per CU.
    pub fn wf_slots_per_cu(&self) -> u32 {
        (self.simds_per_cu * self.wavefronts_per_simd) as u32
    }

    /// VGPR budget per CU (per-wavefront allocation units).
    pub fn vgprs_per_cu(&self) -> u32 {
        self.vgprs_per_simd * self.simds_per_cu as u32
    }
}

/// Per-WG resource requirements, as declared at kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WgResources {
    /// Wavefronts per WG (`ceil(work-items / simd_width)`).
    pub wavefronts: u32,
    /// LDS bytes per WG.
    pub lds_bytes: u32,
    /// VGPRs per wavefront (allocation units; GCN allocates in blocks).
    pub vgprs_per_wavefront: u32,
}

impl WgResources {
    /// A 256-work-item WG (4 wavefronts) with a typical HeteroSync register
    /// footprint and no LDS.
    pub fn default_heterosync() -> Self {
        WgResources {
            wavefronts: 4,
            lds_bytes: 0,
            vgprs_per_wavefront: 8,
        }
    }

    /// Architectural context bytes: vector registers (4 B × lanes per VGPR)
    /// plus LDS plus scalar state per wavefront. This is the Fig 5 quantity
    /// and the amount of save/restore traffic a context switch generates.
    pub fn context_bytes(&self, simd_width: usize) -> u64 {
        let vgpr_bytes =
            self.wavefronts as u64 * self.vgprs_per_wavefront as u64 * 4 * simd_width as u64;
        // 128 B of scalar registers + hardware state per wavefront.
        let scalar_bytes = self.wavefronts as u64 * 128;
        vgpr_bytes + self.lds_bytes as u64 + scalar_bytes
    }
}

impl Default for WgResources {
    fn default() -> Self {
        Self::default_heterosync()
    }
}

/// A kernel launch: program, grid size, resources.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The kernel program.
    pub program: Arc<Program>,
    /// Number of WGs in the grid (the paper's `G`).
    pub num_wgs: u64,
    /// WGs per scheduling cluster (the paper's `L`), exposed to programs as
    /// `Special::WgsPerCluster` for locally-scoped sync variables.
    pub wgs_per_cluster: u64,
    /// Per-WG resource declaration.
    pub resources: WgResources,
    /// Initial global-memory state `(addr, value)` applied before cycle 0.
    pub init_memory: Vec<(Addr, i64)>,
}

impl Kernel {
    /// Creates a kernel with `wgs_per_cluster` defaulted to
    /// `ceil(num_wgs / 8)` (8 CUs in the baseline).
    ///
    /// # Panics
    ///
    /// Panics if `num_wgs == 0` or the program fails verification.
    pub fn new(program: Program, num_wgs: u64, resources: WgResources) -> Self {
        match Self::try_new(program, num_wgs, resources) {
            Ok(kernel) => kernel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Kernel::new`] for user-supplied programs
    /// (e.g. assembled from a `.s` file on the command line).
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::Config`] if `num_wgs == 0` or the program
    /// fails verification.
    pub fn try_new(
        program: Program,
        num_wgs: u64,
        resources: WgResources,
    ) -> Result<Self, crate::SimError> {
        if num_wgs == 0 {
            return Err(crate::SimError::Config(
                "kernel needs at least one WG".into(),
            ));
        }
        if let Err(e) = program.verify() {
            return Err(crate::SimError::Config(format!(
                "kernel program must verify: {e}"
            )));
        }
        let wgs_per_cluster = num_wgs.div_ceil(8).max(1);
        Ok(Kernel {
            program: Arc::new(program),
            num_wgs,
            wgs_per_cluster,
            resources,
            init_memory: Vec::new(),
        })
    }

    /// Sets the cluster width (the paper's `L`).
    pub fn with_cluster(mut self, wgs_per_cluster: u64) -> Self {
        assert!(wgs_per_cluster > 0, "cluster width must be positive");
        self.wgs_per_cluster = wgs_per_cluster;
        self
    }

    /// Adds initial memory state.
    pub fn with_init_memory(mut self, init: Vec<(Addr, i64)>) -> Self {
        self.init_memory = init;
        self
    }

    /// Context size of one WG of this kernel, in bytes (Fig 5).
    pub fn context_bytes(&self, config: &GpuConfig) -> u64 {
        self.resources.context_bytes(config.simd_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::ProgramBuilder;

    fn halt_program() -> Program {
        let mut b = ProgramBuilder::new("halt");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn baseline_matches_table1() {
        let c = GpuConfig::isca2020_baseline();
        assert_eq!(c.num_cus, 8);
        assert_eq!(c.simds_per_cu, 2);
        assert_eq!(c.simd_width, 64);
        assert_eq!(c.wavefronts_per_simd, 20);
        assert_eq!(c.wf_slots_per_cu(), 40);
        assert_eq!(c.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(c.l2.cache.capacity_bytes(), 512 * 1024);
        assert_eq!(c.dram.channels, 4);
    }

    #[test]
    fn context_bytes_in_paper_range() {
        // Fig 5: contexts range from 2 to 10 KB.
        let small = WgResources {
            wavefronts: 2,
            lds_bytes: 0,
            vgprs_per_wavefront: 4,
        };
        let big = WgResources {
            wavefronts: 4,
            lds_bytes: 1024,
            vgprs_per_wavefront: 8,
        };
        let s = small.context_bytes(64);
        let b = big.context_bytes(64);
        assert!((2 * 1024..=4 * 1024).contains(&s), "small context {s}");
        assert!((8 * 1024..=10 * 1024).contains(&b), "big context {b}");
    }

    #[test]
    fn kernel_defaults_cluster_to_g_over_8() {
        let k = Kernel::new(halt_program(), 64, WgResources::default());
        assert_eq!(k.wgs_per_cluster, 8);
        let k = Kernel::new(halt_program(), 5, WgResources::default());
        assert_eq!(k.wgs_per_cluster, 1);
    }

    #[test]
    fn kernel_builder_setters() {
        let k = Kernel::new(halt_program(), 8, WgResources::default())
            .with_cluster(2)
            .with_init_memory(vec![(64, 1)]);
        assert_eq!(k.wgs_per_cluster, 2);
        assert_eq!(k.init_memory, vec![(64, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one WG")]
    fn zero_wg_kernel_rejected() {
        Kernel::new(halt_program(), 0, WgResources::default());
    }
}
