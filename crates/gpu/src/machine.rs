//! The event-driven GPU timing simulator.
//!
//! One [`Gpu`] simulates one kernel launch under one scheduling policy. The
//! main loop pops timed events (instruction batch continuations, memory
//! responses, wait timeouts, context-switch completions, CP firmware ticks,
//! the resource-loss event of the §VI oversubscribed experiment) and drives
//! the per-WG interpreters. All waiting decisions are delegated to the
//! installed [`SchedPolicy`].

use std::collections::{BTreeMap, VecDeque};

use std::time::{Duration, Instant};

use awg_isa::{Inst, Mem, Operand, Special};
use awg_mem::{Addr, AtomicRequest, Backing, L2};
use awg_sim::telemetry::{
    AttributionCause, SnapshotSample, Subsystem, SwapDir, ATTRIBUTION_CAUSES, PROGRESS_STATES,
};
use awg_sim::{
    CodecError, Cycle, Dec, Enc, EventQueue, Fingerprint64, ProfileReport, Stats, TelemetryConfig,
    TelemetryHub,
};

use crate::checkpoint::CheckpointSpec;
use crate::config::{GpuConfig, Kernel, CONTEXT_BASE};
use crate::cu::Cu;
use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, WakeChaosMode};
use crate::hotprof::{HotProfile, HotReport};
use crate::oracle::{InvariantKind, InvariantViolation};
use crate::policy::{
    MonitoredUpdate, PolicyCtx, SchedPolicy, SyncCond, SyncFail, TimeoutAction, WaitDirective, Wake,
};
use crate::result::{HangReport, RunOutcome, RunSummary, WgWaitInfo};
use crate::trace::{Trace, TraceEvent, TraceRecord};
use crate::watchdog::Watchdog;
use crate::wg::{ParkedResponse, Wg, WgId, WgState};

/// Maximum instructions interpreted inline before yielding to the event
/// queue (guards against ALU-only infinite loops freezing simulated time).
const MAX_INLINE_STEPS: usize = 1024;

/// Fallback timeout forced onto `Wait { timeout: None }` directives while a
/// fault plan is installed: dropped wakes must never strand a waiter
/// forever, or every Drop window would read as a deadlock.
const CHAOS_BACKSTOP_TIMEOUT: Cycle = 200_000;

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Resume batch execution (compute/sleep/barrier done, inline-step cap).
    Continue(WgId, u64),
    /// A memory/sync response reached the CU; deliver it (applying any
    /// pending wait directive), then continue.
    Response(WgId, u64),
    /// A policy wake reaches the WG.
    WakeDeliver(WgId, u64),
    /// A waiting WG's fallback timeout fired.
    WaitTimeout(WgId, u64),
    /// Context save traffic finished.
    SwapOutDone(WgId, u64),
    /// Context restore traffic finished.
    SwapInDone(WgId, u64),
    /// Dispatch latency elapsed.
    DispatchDone(WgId, u64),
    /// CP firmware tick.
    CpTick,
    /// Disable a CU and preempt its residents (oversubscribed experiment).
    ResourceLoss(usize),
    /// Re-enable a previously disabled CU (the preempting high-priority
    /// kernel finished; resources return).
    ResourceRestore(usize),
    /// Periodic deadlock/livelock check.
    ProgressCheck,
    /// The installed fault plan's event at this index fires.
    Fault(usize),
}

impl Event {
    /// Hot-profile lane index: the event's stable save tag, matching
    /// [`crate::hotprof::LANE_NAMES`].
    fn lane(&self) -> usize {
        match self {
            Event::Continue(..) => 0,
            Event::Response(..) => 1,
            Event::WakeDeliver(..) => 2,
            Event::WaitTimeout(..) => 3,
            Event::SwapOutDone(..) => 4,
            Event::SwapInDone(..) => 5,
            Event::DispatchDone(..) => 6,
            Event::CpTick => 7,
            Event::ResourceLoss(_) => 8,
            Event::ResourceRestore(_) => 9,
            Event::ProgressCheck => 10,
            Event::Fault(_) => 11,
        }
    }
}

/// Running tallies of the chaos the fault plan actually inflicted.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosCounters {
    cu_losses: u64,
    wake_windows: u64,
    wakes_dropped: u64,
    wakes_delayed: u64,
    wakes_duplicated: u64,
    wakes_reordered: u64,
    policy_injections: u64,
    ctx_stall_hits: u64,
}

fn save_event(enc: &mut Enc, event: &Event) {
    match *event {
        Event::Continue(wg, token) => {
            enc.u8(0);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::Response(wg, token) => {
            enc.u8(1);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::WakeDeliver(wg, token) => {
            enc.u8(2);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::WaitTimeout(wg, token) => {
            enc.u8(3);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::SwapOutDone(wg, token) => {
            enc.u8(4);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::SwapInDone(wg, token) => {
            enc.u8(5);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::DispatchDone(wg, token) => {
            enc.u8(6);
            enc.u32(wg);
            enc.u64(token);
        }
        Event::CpTick => enc.u8(7),
        Event::ResourceLoss(cu) => {
            enc.u8(8);
            enc.usize(cu);
        }
        Event::ResourceRestore(cu) => {
            enc.u8(9);
            enc.usize(cu);
        }
        Event::ProgressCheck => enc.u8(10),
        Event::Fault(i) => {
            enc.u8(11);
            enc.usize(i);
        }
    }
}

fn load_event(dec: &mut Dec<'_>) -> Result<Event, CodecError> {
    Ok(match dec.u8()? {
        0 => Event::Continue(dec.u32()?, dec.u64()?),
        1 => Event::Response(dec.u32()?, dec.u64()?),
        2 => Event::WakeDeliver(dec.u32()?, dec.u64()?),
        3 => Event::WaitTimeout(dec.u32()?, dec.u64()?),
        4 => Event::SwapOutDone(dec.u32()?, dec.u64()?),
        5 => Event::SwapInDone(dec.u32()?, dec.u64()?),
        6 => Event::DispatchDone(dec.u32()?, dec.u64()?),
        7 => Event::CpTick,
        8 => Event::ResourceLoss(dec.usize()?),
        9 => Event::ResourceRestore(dec.usize()?),
        10 => Event::ProgressCheck,
        11 => Event::Fault(dec.usize()?),
        t => return Err(CodecError::Invalid(format!("bad event tag {t}"))),
    })
}

fn kind_index(kind: InvariantKind) -> u8 {
    match kind {
        InvariantKind::DuplicateRegistration => 0,
        InvariantKind::StaleRegistration => 1,
        InvariantKind::MonitorSupersetHole => 2,
        InvariantKind::UnreachableWaiter => 3,
        InvariantKind::MisdeliveredWake => 4,
        InvariantKind::WgAccounting => 5,
        InvariantKind::CuAccounting => 6,
        InvariantKind::CuResidency => 7,
    }
}

fn kind_from_index(idx: u8) -> Result<InvariantKind, CodecError> {
    Ok(match idx {
        0 => InvariantKind::DuplicateRegistration,
        1 => InvariantKind::StaleRegistration,
        2 => InvariantKind::MonitorSupersetHole,
        3 => InvariantKind::UnreachableWaiter,
        4 => InvariantKind::MisdeliveredWake,
        5 => InvariantKind::WgAccounting,
        6 => InvariantKind::CuAccounting,
        7 => InvariantKind::CuResidency,
        t => return Err(CodecError::Invalid(format!("bad invariant kind {t}"))),
    })
}

/// The GPU simulator.
pub struct Gpu {
    pub(crate) config: GpuConfig,
    pub(crate) kernel: Kernel,
    pub(crate) l2: L2,
    pub(crate) cus: Vec<Cu>,
    pub(crate) wgs: Vec<Wg>,
    pub(crate) events: EventQueue<Event>,
    now: Cycle,
    pub(crate) policy: Box<dyn SchedPolicy>,
    stats: Stats,
    pub(crate) pending: VecDeque<WgId>,
    pub(crate) ready: VecDeque<WgId>,
    pub(crate) finished: usize,
    /// Struct-of-arrays census of WG scheduling states, indexed by
    /// [`WgState::census_index`]. Maintained incrementally by
    /// [`Gpu::set_wg_state`] so hot policy-context assembly (every store
    /// and atomic) reads a counter instead of scanning every WG; the
    /// invariant oracle cross-checks it against the per-WG ground truth.
    /// Derived state: never serialized, rebuilt on restore.
    pub(crate) state_census: [usize; WgState::ALL.len()],
    /// Reusable oracle sweep buffers (generation-marked scratch arrays).
    /// Host-only, like `hotprof`: never serialized, never read by the
    /// simulation itself.
    pub(crate) oracle_scratch: std::cell::RefCell<crate::oracle::OracleScratch>,
    last_progress: Cycle,
    resumes: u64,
    unnecessary_resumes: u64,
    switches_out: u64,
    switches_in: u64,
    resource_loss: Vec<(usize, Cycle)>,
    resource_restore: Vec<(usize, Cycle)>,
    trace: Trace,
    deadlocked: Option<Cycle>,
    fault_plan: Option<FaultPlan>,
    wake_chaos: Option<(WakeChaosMode, Cycle)>,
    ctx_stall_until: Cycle,
    ctx_stall_extra: Cycle,
    chaos: ChaosCounters,
    oracle_on: bool,
    violations: Vec<InvariantViolation>,
    digest_window: Option<Cycle>,
    digest_next: Cycle,
    digest_trail: Vec<u64>,
    telemetry: Option<TelemetryHub>,
    /// Host hot-path profiler. Like the hub's `SelfProfile`, this is
    /// host-only state: never serialized, never fed back into simulation.
    hotprof: Option<Box<HotProfile>>,
    watchdog: Option<Watchdog>,
    run_started: Option<Instant>,
    run_wall: Duration,
    /// Whether [`Gpu::run`]'s one-time prologue (experiment events, CP tick,
    /// progress check, first dispatch) has executed. Serialized: a restored
    /// machine's calendar already contains those events.
    started: bool,
    checkpoint: Option<CheckpointSpec>,
    checkpoint_next: Cycle,
    checkpoints_written: u64,
    checkpoint_error: Option<String>,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("now", &self.now)
            .field("policy", &self.policy.name())
            .field("num_wgs", &self.kernel.num_wgs)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a simulator for `kernel` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel's WGs cannot fit on even one CU.
    pub fn new(config: GpuConfig, kernel: Kernel, policy: Box<dyn SchedPolicy>) -> Self {
        match Self::try_new(config, kernel, policy) {
            Ok(gpu) => gpu,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Gpu::new`] for user-supplied configurations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the kernel's WGs cannot fit on even
    /// one CU.
    pub fn try_new(
        config: GpuConfig,
        kernel: Kernel,
        policy: Box<dyn SchedPolicy>,
    ) -> Result<Self, SimError> {
        let cus: Vec<Cu> = (0..config.num_cus).map(|i| Cu::new(i, &config)).collect();
        if cus.is_empty() || cus[0].max_occupancy(&kernel.resources) < 1 {
            return Err(SimError::Config("a single WG must fit on a CU".into()));
        }
        let wgs = (0..kernel.num_wgs).map(|i| Wg::new(i as WgId)).collect();
        let mut l2 = L2::with_dram(config.l2, config.dram);
        for &(addr, value) in &kernel.init_memory {
            l2.backing_mut().store(addr, value);
        }
        let pending = (0..kernel.num_wgs as WgId).collect();
        // Pre-size the event arena from the machine's shape: steady state
        // holds a few in-flight events per work-group (response, wake,
        // timeout) plus token-stale timeout residue, well under 8 per WG.
        let event_capacity = (kernel.num_wgs as usize).saturating_mul(8) + 64;
        let mut state_census = [0usize; WgState::ALL.len()];
        state_census[WgState::Pending.census_index()] = kernel.num_wgs as usize;
        Ok(Gpu {
            config,
            kernel,
            l2,
            cus,
            wgs,
            events: EventQueue::with_capacity(event_capacity),
            now: 0,
            policy,
            stats: Stats::new(),
            pending,
            ready: VecDeque::new(),
            finished: 0,
            state_census,
            oracle_scratch: std::cell::RefCell::new(Default::default()),
            last_progress: 0,
            resumes: 0,
            unnecessary_resumes: 0,
            switches_out: 0,
            switches_in: 0,
            resource_loss: Vec::new(),
            resource_restore: Vec::new(),
            trace: Trace::new(),
            deadlocked: None,
            fault_plan: None,
            wake_chaos: None,
            ctx_stall_until: 0,
            ctx_stall_extra: 0,
            chaos: ChaosCounters::default(),
            oracle_on: false,
            violations: Vec::new(),
            digest_window: None,
            digest_next: 0,
            digest_trail: Vec::new(),
            telemetry: None,
            hotprof: None,
            watchdog: None,
            run_started: None,
            run_wall: Duration::ZERO,
            started: false,
            checkpoint: None,
            checkpoint_next: 0,
            checkpoints_written: 0,
            checkpoint_error: None,
        })
    }

    /// Arms cooperative checkpointing: at every multiple of `spec.every`
    /// cycles the machine writes a whole-machine snapshot to `spec.path`
    /// (atomically, via tmp + rename). Call *before*
    /// [`restore`](crate::checkpoint::restore_into) when resuming — the
    /// snapshot carries the boundary cursor and overwrites it.
    ///
    /// # Panics
    ///
    /// Panics if `spec.every == 0`.
    pub fn set_checkpoint(&mut self, spec: CheckpointSpec) -> &mut Self {
        assert!(spec.every > 0, "checkpoint interval must be positive");
        self.checkpoint_next = (self.now / spec.every + 1) * spec.every;
        self.checkpoint = Some(spec);
        self
    }

    /// Snapshots written by this process so far.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// The first checkpoint-write failure, if one occurred (checkpointing
    /// disarms itself after a failed write; the run itself continues).
    pub fn checkpoint_error(&self) -> Option<&str> {
        self.checkpoint_error.as_deref()
    }

    /// Schedules a CU unplug directly into the live event calendar — the
    /// warm-started what-if query behind `--restore-drop-cu CU@CYCLE`.
    /// Unlike [`Gpu::schedule_resource_loss`] this works on a restored
    /// machine, whose one-time prologue (the only reader of the experiment
    /// vectors) already ran in the original process.
    pub fn inject_resource_loss(&mut self, cu: usize, at: Cycle) -> Result<&mut Self, SimError> {
        if cu >= self.cus.len() {
            return Err(SimError::Config(format!(
                "cannot drop CU {cu}: machine has {} CUs",
                self.cus.len()
            )));
        }
        if at < self.now {
            return Err(SimError::Config(format!(
                "cannot drop CU {cu} at cycle {at}: machine is already at cycle {}",
                self.now
            )));
        }
        self.events.schedule(at, Event::ResourceLoss(cu));
        Ok(self)
    }

    fn write_checkpoint_now(&mut self) {
        let Some(spec) = self.checkpoint.as_ref() else {
            return;
        };
        let path = spec.path.clone();
        let identity = spec.identity;
        let kill_after = spec.kill_after;
        match crate::checkpoint::write_checkpoint(self, identity, &path) {
            Ok(()) => {
                self.checkpoints_written += 1;
                if kill_after == Some(self.checkpoints_written) {
                    // Deterministic SIGKILL model for the crash-resume
                    // tests: die without unwinding the moment the Nth
                    // snapshot hits disk.
                    std::process::exit(137);
                }
            }
            Err(err) => {
                // A failing disk must not kill a healthy simulation:
                // disarm checkpointing, remember why, keep running.
                self.checkpoint_error = Some(format!(
                    "checkpoint write to {} failed: {err}",
                    path.display()
                ));
                self.checkpoint = None;
            }
        }
    }

    /// Serializes every piece of mutable machine state: clocks, memory
    /// hierarchy, CUs, WGs, the event calendar (with FIFO sequence numbers
    /// verbatim), scheduler-policy internals, stats, run queues, chaos
    /// state, the invariant-violation log, and the digest trail.
    /// Configuration (geometry, kernel, fault plan, instrumentation flags)
    /// is identity, not state — [`Gpu::load_state`] overlays onto a
    /// freshly-built machine with the same configuration.
    pub(crate) fn save_state(&self, enc: &mut Enc) {
        enc.bool(self.started);
        enc.u64(self.now);
        enc.usize(self.finished);
        enc.u64(self.last_progress);
        self.l2.save(enc);
        enc.usize(self.cus.len());
        for cu in &self.cus {
            cu.save(enc);
        }
        enc.usize(self.wgs.len());
        for wg in &self.wgs {
            wg.save(enc);
        }
        let entries = self.events.snapshot();
        enc.usize(entries.len());
        for (cycle, seq, event) in &entries {
            enc.u64(*cycle);
            enc.u64(*seq);
            save_event(enc, event);
        }
        enc.u64(self.events.scheduled_total());
        enc.str(self.policy.name());
        self.policy.save_state(enc);
        self.stats.save(enc);
        enc.usize(self.pending.len());
        for &wg in &self.pending {
            enc.u32(wg);
        }
        enc.usize(self.ready.len());
        for &wg in &self.ready {
            enc.u32(wg);
        }
        enc.u64(self.resumes);
        enc.u64(self.unnecessary_resumes);
        enc.u64(self.switches_out);
        enc.u64(self.switches_in);
        enc.usize(self.resource_loss.len());
        for &(cu, at) in &self.resource_loss {
            enc.usize(cu);
            enc.u64(at);
        }
        enc.usize(self.resource_restore.len());
        for &(cu, at) in &self.resource_restore {
            enc.usize(cu);
            enc.u64(at);
        }
        self.trace.save(enc);
        enc.opt_u64(self.deadlocked);
        match self.wake_chaos {
            Some((mode, until)) => {
                enc.bool(true);
                match mode {
                    WakeChaosMode::Drop => enc.u8(0),
                    WakeChaosMode::Delay(extra) => {
                        enc.u8(1);
                        enc.u64(extra);
                    }
                    WakeChaosMode::Duplicate => enc.u8(2),
                    WakeChaosMode::Reorder => enc.u8(3),
                }
                enc.u64(until);
            }
            None => enc.bool(false),
        }
        enc.u64(self.ctx_stall_until);
        enc.u64(self.ctx_stall_extra);
        enc.u64(self.chaos.cu_losses);
        enc.u64(self.chaos.wake_windows);
        enc.u64(self.chaos.wakes_dropped);
        enc.u64(self.chaos.wakes_delayed);
        enc.u64(self.chaos.wakes_duplicated);
        enc.u64(self.chaos.wakes_reordered);
        enc.u64(self.chaos.policy_injections);
        enc.u64(self.chaos.ctx_stall_hits);
        enc.usize(self.violations.len());
        for v in &self.violations {
            enc.u64(v.at);
            enc.u8(kind_index(v.kind));
            enc.str(&v.detail);
        }
        enc.u64(self.digest_next);
        enc.usize(self.digest_trail.len());
        for &d in &self.digest_trail {
            enc.u64(d);
        }
        enc.u64(self.checkpoint_next);
        match &self.telemetry {
            Some(hub) => {
                enc.bool(true);
                hub.save(enc);
            }
            None => enc.bool(false),
        }
    }

    /// Overlays state written by [`Gpu::save_state`] onto this machine,
    /// which must have been built from the same configuration. Any
    /// inconsistency — count mismatches, out-of-range indices, a policy
    /// name that differs, telemetry presence that disagrees with the
    /// instrumentation flags — fails closed.
    pub(crate) fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.started = dec.bool()?;
        self.now = dec.u64()?;
        self.finished = dec.usize()?;
        self.last_progress = dec.u64()?;
        self.l2.load(dec)?;
        let n_cus = dec.count(16)?;
        if n_cus != self.cus.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot has {n_cus} CUs, machine has {}",
                self.cus.len()
            )));
        }
        for cu in &mut self.cus {
            cu.load(dec)?;
        }
        let n_wgs = dec.count(16)?;
        if n_wgs != self.wgs.len() {
            return Err(CodecError::Invalid(format!(
                "snapshot has {n_wgs} WGs, machine has {}",
                self.wgs.len()
            )));
        }
        for wg in &mut self.wgs {
            wg.load(dec)?;
        }
        // The census is derived state: rebuild it from the restored WGs.
        self.state_census = [0; WgState::ALL.len()];
        for wg in &self.wgs {
            self.state_census[wg.state.census_index()] += 1;
        }
        let n_events = dec.count(10)?;
        let mut entries = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let cycle = dec.u64()?;
            let seq = dec.u64()?;
            let event = load_event(dec)?;
            self.validate_event(&event)?;
            entries.push((cycle, seq, event));
        }
        let next_seq = dec.u64()?;
        self.events = EventQueue::restore(entries, next_seq);
        let name = dec.str()?;
        if name != self.policy.name() {
            return Err(CodecError::Invalid(format!(
                "snapshot policy '{name}' != machine policy '{}'",
                self.policy.name()
            )));
        }
        self.policy.load_state(dec)?;
        self.stats = Stats::load(dec)?;
        let n_pending = dec.count(4)?;
        self.pending.clear();
        for _ in 0..n_pending {
            self.pending.push_back(self.checked_wg(dec.u32()?)?);
        }
        let n_ready = dec.count(4)?;
        self.ready.clear();
        for _ in 0..n_ready {
            self.ready.push_back(self.checked_wg(dec.u32()?)?);
        }
        self.resumes = dec.u64()?;
        self.unnecessary_resumes = dec.u64()?;
        self.switches_out = dec.u64()?;
        self.switches_in = dec.u64()?;
        let n_loss = dec.count(16)?;
        self.resource_loss.clear();
        for _ in 0..n_loss {
            self.resource_loss.push((dec.usize()?, dec.u64()?));
        }
        let n_restore = dec.count(16)?;
        self.resource_restore.clear();
        for _ in 0..n_restore {
            self.resource_restore.push((dec.usize()?, dec.u64()?));
        }
        self.trace.load(dec)?;
        self.deadlocked = dec.opt_u64()?;
        self.wake_chaos = if dec.bool()? {
            let mode = match dec.u8()? {
                0 => WakeChaosMode::Drop,
                1 => WakeChaosMode::Delay(dec.u64()?),
                2 => WakeChaosMode::Duplicate,
                3 => WakeChaosMode::Reorder,
                t => {
                    return Err(CodecError::Invalid(format!("bad wake-chaos mode tag {t}")));
                }
            };
            Some((mode, dec.u64()?))
        } else {
            None
        };
        self.ctx_stall_until = dec.u64()?;
        self.ctx_stall_extra = dec.u64()?;
        self.chaos.cu_losses = dec.u64()?;
        self.chaos.wake_windows = dec.u64()?;
        self.chaos.wakes_dropped = dec.u64()?;
        self.chaos.wakes_delayed = dec.u64()?;
        self.chaos.wakes_duplicated = dec.u64()?;
        self.chaos.wakes_reordered = dec.u64()?;
        self.chaos.policy_injections = dec.u64()?;
        self.chaos.ctx_stall_hits = dec.u64()?;
        let n_violations = dec.count(13)?;
        self.violations.clear();
        for _ in 0..n_violations {
            let at = dec.u64()?;
            let kind = kind_from_index(dec.u8()?)?;
            let detail = dec.str()?.to_string();
            self.violations
                .push(InvariantViolation { at, kind, detail });
        }
        self.digest_next = dec.u64()?;
        let n_digests = dec.count(8)?;
        self.digest_trail.clear();
        for _ in 0..n_digests {
            self.digest_trail.push(dec.u64()?);
        }
        self.checkpoint_next = dec.u64()?;
        let telemetry_present = dec.bool()?;
        if telemetry_present != self.telemetry.is_some() {
            return Err(CodecError::Invalid(
                "snapshot telemetry presence disagrees with instrumentation flags".into(),
            ));
        }
        if let Some(hub) = self.telemetry.as_mut() {
            hub.load(dec)?;
        }
        Ok(())
    }

    fn checked_wg(&self, wg: WgId) -> Result<WgId, CodecError> {
        if (wg as usize) < self.wgs.len() {
            Ok(wg)
        } else {
            Err(CodecError::Invalid(format!(
                "WG id {wg} out of range ({} WGs)",
                self.wgs.len()
            )))
        }
    }

    fn validate_event(&self, event: &Event) -> Result<(), CodecError> {
        match *event {
            Event::Continue(wg, _)
            | Event::Response(wg, _)
            | Event::WakeDeliver(wg, _)
            | Event::WaitTimeout(wg, _)
            | Event::SwapOutDone(wg, _)
            | Event::SwapInDone(wg, _)
            | Event::DispatchDone(wg, _) => self.checked_wg(wg).map(|_| ()),
            Event::ResourceLoss(cu) | Event::ResourceRestore(cu) => {
                if cu < self.cus.len() {
                    Ok(())
                } else {
                    Err(CodecError::Invalid(format!(
                        "event CU {cu} out of range ({} CUs)",
                        self.cus.len()
                    )))
                }
            }
            Event::Fault(i) => {
                let n = self.fault_plan.as_ref().map_or(0, |p| p.events.len());
                if i < n {
                    Ok(())
                } else {
                    Err(CodecError::Invalid(format!(
                        "fault event index {i} out of range (plan has {n})"
                    )))
                }
            }
            Event::CpTick | Event::ProgressCheck => Ok(()),
        }
    }

    /// Installs a cooperative-cancellation watchdog. The event loop polls
    /// it each iteration; when a limit fires the run ends with
    /// [`RunOutcome::Cancelled`], keeping the usual summary and forensic
    /// hang report.
    pub fn set_watchdog(&mut self, watchdog: Watchdog) -> &mut Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Installs a seeded fault plan; its timeline is injected while the
    /// kernel runs. Installing a plan also arms the chaos backstop: waits
    /// with no fallback timeout are clamped to a finite one, so dropped
    /// wakes stall a waiter but cannot strand it.
    ///
    /// # Panics
    ///
    /// Panics if the plan unplugs a CU this machine does not have.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        match self.try_install_fault_plan(plan) {
            Ok(gpu) => gpu,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`install_fault_plan`](Gpu::install_fault_plan)
    /// for plans loaded from user-supplied reproducer files.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the plan unplugs a CU this machine
    /// does not have.
    pub fn try_install_fault_plan(&mut self, plan: FaultPlan) -> Result<&mut Self, SimError> {
        if let Some(cu) = plan.max_cu() {
            if cu >= self.config.num_cus {
                return Err(SimError::Config(format!("fault plan unplugs CU {cu}")));
            }
        }
        self.fault_plan = Some(plan);
        Ok(self)
    }

    /// Enables the invariant oracle: after every scheduling event the
    /// machine cross-checks its state against the machine-wide invariants
    /// (see [`crate::oracle`]) and records violations for
    /// [`violations`](Gpu::violations).
    pub fn enable_invariant_oracle(&mut self) -> &mut Self {
        self.oracle_on = true;
        self
    }

    /// Invariant violations the oracle has recorded so far (empty unless
    /// [`enable_invariant_oracle`](Gpu::enable_invariant_oracle) was called).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Enables the cycle-windowed digest trail: at every multiple of
    /// `window` cycles the machine appends [`digest`](Gpu::digest) to a
    /// trail, so two same-seed runs can be compared window by window and
    /// the first divergent window identified.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn enable_digest_trail(&mut self, window: Cycle) -> &mut Self {
        assert!(window > 0, "digest window must be positive");
        self.digest_window = Some(window);
        self.digest_next = window;
        self
    }

    /// The per-window digest trail recorded so far.
    pub fn digest_trail(&self) -> &[u64] {
        &self.digest_trail
    }

    /// Calendar-queue observability: `(pending events, overflow-tier
    /// events, free-list holes)`. Checkpoint tests use this to prove their
    /// snapshots exercise the far-future overflow tier and a fragmented
    /// arena, not just the near-future wheel.
    pub fn calendar_stats(&self) -> (usize, usize, usize) {
        let (_slots, holes) = self.events.arena_stats();
        (self.events.len(), self.events.overflow_len(), holes)
    }

    /// Order-sensitive digest of the machine's architectural state: queues,
    /// per-WG execution state, CU residency, and every non-zero memory
    /// word. Two same-seed runs must digest identically at identical event
    /// boundaries; any mismatch is a determinism bug.
    pub fn digest(&self) -> u64 {
        let mut f = Fingerprint64::new();
        f.push(self.now);
        f.push(self.finished as u64);
        f.push_seq(self.pending.iter().map(|&w| u64::from(w)));
        f.push_seq(self.ready.iter().map(|&w| u64::from(w)));
        for wg in &self.wgs {
            f.push(wg.state as u64);
            f.push(wg.pc as u64);
            f.push(wg.token);
            f.push(wg.insts);
            f.push(wg.atomics);
            match wg.cond {
                Some(c) => {
                    f.push(1);
                    f.push(c.addr);
                    f.push_i64(c.expected);
                }
                None => f.push(0),
            }
            f.push(wg.cu.map_or(u64::MAX, |c| c as u64));
        }
        for cu in &self.cus {
            f.push(u64::from(cu.is_enabled()));
            // Residency order is scheduling-dependent scratch state; sort so
            // the digest reflects *which* WGs are resident, not swap order.
            let mut resident: Vec<WgId> = cu.resident().to_vec();
            resident.sort_unstable();
            f.push_seq(resident.into_iter().map(u64::from));
        }
        let mut words: Vec<(Addr, i64)> = self.l2.backing().nonzero_words().collect();
        words.sort_unstable_by_key(|&(a, _)| a);
        f.push(words.len() as u64);
        for (a, v) in words {
            f.push(a);
            f.push_i64(v);
        }
        f.finish()
    }

    fn record_violation(&mut self, kind: InvariantKind, detail: String) {
        const MAX_RECORDED: usize = 64;
        if self.violations.len() >= MAX_RECORDED {
            return;
        }
        // One report per (kind, detail): a standing violation re-detected at
        // every subsequent event would otherwise drown the first cause.
        if self
            .violations
            .iter()
            .any(|v| v.kind == kind && v.detail == detail)
        {
            return;
        }
        self.violations.push(InvariantViolation {
            at: self.now,
            kind,
            detail,
        });
    }

    /// Runs the oracle's full invariant sweep and records anything it finds.
    fn oracle_sweep(&mut self) {
        for v in self.check_invariants() {
            self.record_violation(v.kind, v.detail);
        }
    }

    /// Schedules the §VI resource-loss event: at `at` cycles, CU `cu` is
    /// disabled and its resident WGs are context switched out.
    pub fn schedule_resource_loss(&mut self, cu: usize, at: Cycle) -> &mut Self {
        assert!(cu < self.config.num_cus, "no such CU");
        self.resource_loss.push((cu, at));
        self
    }

    /// Schedules the return of CU `cu` at cycle `at` (e.g. the preempting
    /// high-priority kernel completed and its resources free up). Waiting
    /// and ready WGs can be dispatched onto it again.
    pub fn schedule_resource_restore(&mut self, cu: usize, at: Cycle) -> &mut Self {
        assert!(cu < self.config.num_cus, "no such CU");
        self.resource_restore.push((cu, at));
        self
    }

    /// Schedules a high-priority kernel burst: at `at`, `cus` CUs are
    /// preempted (their resident WGs context switch out) and they return
    /// after `duration` cycles. This is the §V.D scenario — "allows the GPU
    /// to be more responsive to high priority kernels while, at the same
    /// time, ensuring the IFP of lower priority kernels" — modeled at the
    /// same level as the paper's own oversubscribed experiment (CU-time
    /// occupancy, not the foreign kernel's instructions).
    pub fn schedule_priority_burst(&mut self, cus: usize, at: Cycle, duration: Cycle) -> &mut Self {
        assert!(cus <= self.config.num_cus, "burst wider than the machine");
        // Take the highest-numbered CUs (deterministic and disjoint from
        // dispatch's least-loaded preference for low indices).
        for cu in (self.config.num_cus - cus)..self.config.num_cus {
            self.schedule_resource_loss(cu, at);
            self.schedule_resource_restore(cu, at + duration);
        }
        self
    }

    /// Enables event tracing (Fig 6 timelines, Perfetto export).
    pub fn enable_trace(&mut self) -> &mut Self {
        self.trace.enable();
        self
    }

    /// Bounds the trace buffer to the newest `capacity` records (`None`
    /// restores the unbounded default). Long chaos runs with tracing on can
    /// then run indefinitely in constant memory.
    pub fn set_trace_capacity(&mut self, capacity: Option<usize>) -> &mut Self {
        self.trace.set_capacity(capacity);
        self
    }

    /// Selects which events the trace retains from now on. The conformance
    /// lab records [`crate::trace::TraceFilter::Schedule`] so deadlocked
    /// busy-wait adversary runs keep hundreds of records, not millions.
    pub fn set_trace_filter(&mut self, filter: crate::trace::TraceFilter) -> &mut Self {
        self.trace.set_filter(filter);
        self
    }

    /// Number of trace records evicted by the ring bound so far.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// A copy of the retained trace, oldest record first.
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.trace.snapshot()
    }

    /// Enables the telemetry hub: per-WG progress accounting, optional
    /// cycle-windowed metric snapshots, and optional host self-profiling.
    ///
    /// Off by default. The hub is a pure observer — enabling it never
    /// changes simulated behaviour, so digest trails stay bit-identical.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) -> &mut Self {
        let mut hub = TelemetryHub::new(config);
        hub.ensure_wgs(self.kernel.num_wgs as usize);
        self.telemetry = Some(hub);
        self
    }

    /// The telemetry hub, when enabled.
    pub fn telemetry(&self) -> Option<&TelemetryHub> {
        self.telemetry.as_ref()
    }

    /// The end-of-run self-profiling summary, when telemetry ran with
    /// profiling enabled.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.telemetry
            .as_ref()
            .filter(|h| h.profiling())
            .map(|h| h.profile_report(self.run_wall, self.now))
    }

    /// Enables the host hot-path profiler: event-loop pop/push counts,
    /// calendar depth high-water, per-event-type dispatch counts and
    /// wall-time, and wake/dispatch scan tallies.
    ///
    /// Off by default and zero-cost when off. Host-only — never serialized
    /// into checkpoints and never visible to the digest trail.
    pub fn enable_hot_profile(&mut self) -> &mut Self {
        self.hotprof = Some(Box::new(HotProfile {
            sched_base: self.events.scheduled_total(),
            ..HotProfile::default()
        }));
        self
    }

    /// The end-of-run hot-path report, when the profiler was enabled.
    /// Call after [`Gpu::run`]: the report folds in the policy's monitor
    /// probe counters, which land in the stats registry at summary time.
    pub fn hot_report(&self) -> Option<HotReport> {
        self.hotprof.as_ref().map(|p| {
            let sync_probes: u64 = self
                .stats
                .counters()
                .filter(|(name, _)| {
                    name.ends_with("cp_condition_checks") || name.ends_with("monitor_log_appends")
                })
                .map(|(_, v)| v)
                .sum();
            HotReport::assemble(
                p,
                self.now,
                self.run_wall,
                self.events.scheduled_total(),
                self.l2.op_counts(),
                self.l2.monitored_lines(),
                sync_probes,
                self.trace.len(),
            )
        })
    }

    /// The functional memory (workload validation after a run).
    pub fn backing(&self) -> &Backing {
        self.l2.backing()
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    // ---------------------------------------------------------------------
    // Policy plumbing
    // ---------------------------------------------------------------------

    fn swapped_waiting_count(&self) -> usize {
        // O(1) via the SoA census — this runs on every store and atomic
        // (policy-context assembly), where the old per-WG scan dominated
        // the wake lane at fig15 grid sizes.
        self.state_census[WgState::SwappedWaiting.census_index()]
    }

    /// Runs `f` with a freshly assembled [`PolicyCtx`].
    fn with_policy<R>(
        &mut self,
        f: impl FnOnce(&mut dyn SchedPolicy, &mut PolicyCtx<'_>) -> R,
    ) -> R {
        let swapped = self.swapped_waiting_count();
        let mut ctx = PolicyCtx {
            now: self.now,
            l2: &mut self.l2,
            stats: &mut self.stats,
            pending_wgs: self.pending.len(),
            ready_wgs: self.ready.len(),
            swapped_waiting_wgs: swapped,
            total_wgs: self.kernel.num_wgs,
        };
        f(self.policy.as_mut(), &mut ctx)
    }

    /// Applies the active wake-chaos window (if any) to a batch of policy
    /// wakes before they are scheduled for delivery.
    fn perturb_wakes(&mut self, wakes: &mut Vec<Wake>) {
        let Some((mode, until)) = self.wake_chaos else {
            return;
        };
        if self.now >= until {
            self.wake_chaos = None;
            return;
        }
        if wakes.is_empty() {
            return;
        }
        match mode {
            WakeChaosMode::Drop => {
                self.chaos.wakes_dropped += wakes.len() as u64;
                wakes.clear();
            }
            WakeChaosMode::Delay(extra) => {
                self.chaos.wakes_delayed += wakes.len() as u64;
                for w in wakes.iter_mut() {
                    w.delay += extra;
                }
            }
            WakeChaosMode::Duplicate => {
                self.chaos.wakes_duplicated += wakes.len() as u64;
                let dups: Vec<Wake> = wakes
                    .iter()
                    .map(|w| Wake::after(w.wg, w.delay + 13))
                    .collect();
                wakes.extend(dups);
            }
            WakeChaosMode::Reorder => {
                if wakes.len() > 1 {
                    self.chaos.wakes_reordered += wakes.len() as u64;
                }
                wakes.reverse();
                for (i, w) in wakes.iter_mut().enumerate() {
                    w.delay += 17 * i as Cycle;
                }
            }
        }
    }

    fn apply_wakes(&mut self, mut wakes: Vec<Wake>) {
        if let Some(hot) = self.hotprof.as_mut() {
            hot.wake_scans += 1;
            hot.wakes_applied += wakes.len() as u64;
        }
        self.perturb_wakes(&mut wakes);
        for wake in wakes {
            let wg = wake.wg as usize;
            match self.wgs[wg].state {
                WgState::Stalled | WgState::SwappedWaiting => {
                    let token = self.wgs[wg].token;
                    if let Some(hub) = self.telemetry.as_mut() {
                        hub.note_wake(wg, self.now);
                    }
                    self.events.schedule(
                        self.now + self.config.resume_latency + wake.delay,
                        Event::WakeDeliver(wake.wg, token),
                    );
                }
                WgState::SwappingOut => {
                    if let Some(hub) = self.telemetry.as_mut() {
                        hub.note_wake(wg, self.now);
                    }
                    self.wgs[wg].woke = true;
                }
                WgState::Running
                    if matches!(
                        self.wgs[wg].pending_directive,
                        Some(WaitDirective::Wait { .. })
                    ) =>
                {
                    // The wake raced the WG's own wait entry: its failed
                    // sync response is still in flight. Cancel the wait so
                    // the response retries immediately (Mesa semantics)
                    // instead of stranding the WG until its fallback
                    // timeout.
                    self.wgs[wg].woke = true;
                }
                // Already woken (timeout raced the notification) — drop.
                _ => {}
            }
        }
    }

    /// With a fault plan installed, waits must carry a finite fallback
    /// timeout: a dropped wake then costs cycles, not the run.
    fn chaos_safe_directive(&self, directive: WaitDirective) -> WaitDirective {
        match directive {
            WaitDirective::Wait {
                release,
                timeout: None,
            } if self.fault_plan.is_some() => WaitDirective::Wait {
                release,
                timeout: Some(CHAOS_BACKSTOP_TIMEOUT),
            },
            other => other,
        }
    }

    fn notify_monitored(&mut self, update: MonitoredUpdate) {
        let wakes = self.with_policy(|p, ctx| p.on_monitored_update(ctx, &update));
        self.apply_wakes(wakes);
    }

    // ---------------------------------------------------------------------
    // Dispatch and context switching
    // ---------------------------------------------------------------------

    fn pick_cu(&self) -> Option<usize> {
        // Least-loaded enabled CU that fits the kernel's WG shape.
        let req = &self.kernel.resources;
        self.cus
            .iter()
            .filter(|cu| cu.fits(req))
            .min_by_key(|cu| cu.resident().len())
            .map(|cu| cu.id())
    }

    fn try_dispatch(&mut self) {
        if let Some(hot) = self.hotprof.as_mut() {
            hot.dispatch_scans += 1;
        }
        loop {
            // Architectures without WG-granularity rescheduling (Baseline,
            // Sleep) cannot swap preempted WGs back in: their ready queue
            // is stranded and only fresh dispatches proceed.
            let from_ready = !self.ready.is_empty() && self.policy.supports_wg_rescheduling();
            let candidate = if from_ready {
                self.ready.front().copied()
            } else {
                self.pending.front().copied()
            };
            let Some(wg) = candidate else { return };
            let Some(cu) = self.pick_cu() else { return };
            if from_ready {
                self.ready.pop_front();
            } else {
                self.pending.pop_front();
            }
            let req = self.kernel.resources;
            self.cus[cu].admit(wg, &req);
            if let Some(hot) = self.hotprof.as_mut() {
                hot.dispatch_admissions += 1;
            }
            self.wgs[wg as usize].cu = Some(cu);
            let token = self.wgs[wg as usize].bump_token();
            if from_ready {
                let stall = self.ctx_stall_penalty();
                self.set_wg_state(wg, WgState::SwappingIn, self.now);
                self.switches_in += 1;
                let lines = self.kernel.context_bytes(&self.config).div_ceil(64);
                let burst_done = self.l2.context_burst(self.now, Self::ctx_addr(wg), lines);
                let done = burst_done + self.config.ctx_switch_overhead + stall;
                if let Some(hub) = self.telemetry.as_mut() {
                    hub.note_ctx_switch(
                        SwapDir::In,
                        burst_done.saturating_sub(self.now),
                        self.config.ctx_switch_overhead,
                        stall,
                    );
                }
                self.trace
                    .record(self.now, wg, TraceEvent::SwapInStart { cu });
                self.events.schedule(done, Event::SwapInDone(wg, token));
            } else {
                self.set_wg_state(wg, WgState::Dispatching, self.now);
                self.trace.record(self.now, wg, TraceEvent::Dispatch { cu });
                self.events.schedule(
                    self.now + self.config.dispatch_cycles,
                    Event::DispatchDone(wg, token),
                );
            }
        }
    }

    fn ctx_addr(wg: WgId) -> u64 {
        // 64 KB per context slot, far above workload allocations.
        CONTEXT_BASE + (wg as u64) * (64 * 1024)
    }

    fn begin_swap_out(&mut self, wg: WgId) {
        let stall = self.ctx_stall_penalty();
        debug_assert!(
            self.wgs[wg as usize].state.is_resident(),
            "swap-out of non-resident WG"
        );
        let token = self.wgs[wg as usize].bump_token();
        self.set_wg_state(wg, WgState::SwappingOut, self.now);
        self.switches_out += 1;
        let lines = self.kernel.context_bytes(&self.config).div_ceil(64);
        let burst_done = self.l2.context_burst(self.now, Self::ctx_addr(wg), lines);
        let done = burst_done + self.config.ctx_switch_overhead + stall;
        if let Some(hub) = self.telemetry.as_mut() {
            hub.note_ctx_switch(
                SwapDir::Out,
                burst_done.saturating_sub(self.now),
                self.config.ctx_switch_overhead,
                stall,
            );
        }
        self.trace.record(self.now, wg, TraceEvent::SwapOutStart);
        self.events.schedule(done, Event::SwapOutDone(wg, token));
    }

    /// Extra context-traffic cycles while a transient stall window is
    /// active (the switch loses arbitration and retries with backoff).
    fn ctx_stall_penalty(&mut self) -> Cycle {
        if self.now < self.ctx_stall_until {
            self.chaos.ctx_stall_hits += 1;
            self.ctx_stall_extra
        } else {
            0
        }
    }

    fn release_cu(&mut self, wg: WgId) {
        if let Some(cu) = self.wgs[wg as usize].cu.take() {
            self.cus[cu].release(wg, &self.kernel.resources);
        }
    }

    /// Classifies *why* a WG in `state` is spending its cycles there, for
    /// the attribution ledger. The split the paper cares about: a swap
    /// episode the scheduler chose is `Preempted`; the same episode forced
    /// by an injected CU loss is `FaultStall`; off-CU residence with a
    /// declared sync condition is `SyncWait` (the WG would not run even if
    /// resident).
    fn cause_for(&self, wg: usize, state: WgState) -> AttributionCause {
        let w = &self.wgs[wg];
        match state {
            WgState::Running => AttributionCause::Executing,
            WgState::Sleeping => AttributionCause::SleepWait,
            WgState::Stalled => AttributionCause::SyncWait,
            WgState::Finished => AttributionCause::Retired,
            WgState::Pending | WgState::Dispatching => {
                if w.fault_evicted {
                    AttributionCause::FaultStall
                } else {
                    AttributionCause::Queued
                }
            }
            WgState::SwappingOut | WgState::SwappingIn | WgState::ReadySwapped => {
                if w.fault_evicted {
                    AttributionCause::FaultStall
                } else {
                    AttributionCause::Preempted
                }
            }
            WgState::SwappedWaiting => {
                if w.fault_evicted {
                    AttributionCause::FaultStall
                } else if w.cond.is_some() {
                    AttributionCause::SyncWait
                } else {
                    AttributionCause::Preempted
                }
            }
        }
    }

    /// Transitions a WG's scheduling state, keeping the telemetry hub's
    /// time-in-state accounting and cycle-attribution ledger in step with
    /// the machine's own.
    fn set_wg_state(&mut self, wg: WgId, state: WgState, at: Cycle) {
        let wgu = wg as usize;
        self.state_census[self.wgs[wgu].state.census_index()] -= 1;
        self.state_census[state.census_index()] += 1;
        self.wgs[wgu].set_state(state, at);
        if state == WgState::Running {
            // The fault's eviction episode ends when the WG runs again.
            self.wgs[wgu].fault_evicted = false;
        }
        if self.telemetry.is_some() {
            let cause = self.cause_for(wgu, state);
            if let Some(hub) = self.telemetry.as_mut() {
                hub.transition(wgu, state.progress_class(), at);
                hub.attribute(wgu, cause, at);
            }
        }
    }

    /// Re-arms a waiting WG's fallback timeout after a token-bumping
    /// transition (forced swap-out of a stalled WG, stall→switch escalation).
    fn rearm_timeout(&mut self, wg: WgId) {
        let w = &self.wgs[wg as usize];
        if let Some(deadline) = w.timeout_at {
            let at = deadline.max(self.now);
            self.events.schedule(at, Event::WaitTimeout(wg, w.token));
        }
    }

    // ---------------------------------------------------------------------
    // Instruction interpretation
    // ---------------------------------------------------------------------

    fn operand(&self, wg: usize, op: Operand) -> i64 {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => self.wgs[wg].regs.get(r),
        }
    }

    fn resolve(&self, wg: usize, mem: Mem) -> u64 {
        match mem.index {
            None => mem.base,
            Some(r) => mem
                .base
                .wrapping_add((self.wgs[wg].regs.get(r) as u64).wrapping_mul(mem.scale)),
        }
    }

    fn special_value(&self, wg: usize, s: Special) -> i64 {
        let k = &self.kernel;
        match s {
            Special::WgId => wg as i64,
            Special::NumWgs => k.num_wgs as i64,
            Special::WgsPerCluster => k.wgs_per_cluster as i64,
            Special::ClusterId => (wg as u64 / k.wgs_per_cluster) as i64,
            Special::NumClusters => k.num_wgs.div_ceil(k.wgs_per_cluster) as i64,
        }
    }

    /// Interprets instructions of `wg` starting at `self.now`, inline until
    /// the next timed operation.
    fn advance(&mut self, wg: WgId) {
        let wgu = wg as usize;
        debug_assert_eq!(self.wgs[wgu].state, WgState::Running);
        let mut t: Cycle = 0;
        let program = self.kernel.program.clone();
        for step in 0.. {
            if step >= MAX_INLINE_STEPS {
                let token = self.wgs[wgu].bump_token();
                self.events
                    .schedule(self.now + t, Event::Continue(wg, token));
                return;
            }
            let pc = self.wgs[wgu].pc;
            let inst = *program.inst(pc);
            self.wgs[wgu].insts += 1;
            t += self.config.issue_cycles;
            match inst {
                Inst::Li(d, v) => {
                    self.wgs[wgu].regs.set(d, v);
                    self.wgs[wgu].pc = pc + 1;
                }
                Inst::Mov(d, s) => {
                    let v = self.wgs[wgu].regs.get(s);
                    self.wgs[wgu].regs.set(d, v);
                    self.wgs[wgu].pc = pc + 1;
                }
                Inst::Alu(op, d, s, o) => {
                    let a = self.wgs[wgu].regs.get(s);
                    let b = self.operand(wgu, o);
                    self.wgs[wgu].regs.set(d, op.apply(a, b));
                    self.wgs[wgu].pc = pc + 1;
                }
                Inst::Special(d, s) => {
                    let v = self.special_value(wgu, s);
                    self.wgs[wgu].regs.set(d, v);
                    self.wgs[wgu].pc = pc + 1;
                }
                Inst::Jmp(l) => {
                    self.wgs[wgu].pc = program.target(l);
                }
                Inst::Br(c, r, o, l) => {
                    let a = self.wgs[wgu].regs.get(r);
                    let b = self.operand(wgu, o);
                    self.wgs[wgu].pc = if c.holds(a, b) {
                        program.target(l)
                    } else {
                        pc + 1
                    };
                }
                Inst::Compute(c) => {
                    self.wgs[wgu].pc = pc + 1;
                    let token = self.wgs[wgu].bump_token();
                    self.events
                        .schedule(self.now + t + c as Cycle, Event::Continue(wg, token));
                    return;
                }
                Inst::Barrier => {
                    self.wgs[wgu].pc = pc + 1;
                    let cost = self.config.barrier_base_cycles
                        + self.config.barrier_per_wf_cycles
                            * self.kernel.resources.wavefronts as Cycle;
                    let token = self.wgs[wgu].bump_token();
                    self.events
                        .schedule(self.now + t + cost, Event::Continue(wg, token));
                    return;
                }
                Inst::Sleep(op) => {
                    let n = self.operand(wgu, op).max(0) as Cycle;
                    self.wgs[wgu].pc = pc + 1;
                    let token = self.wgs[wgu].bump_token();
                    self.set_wg_state(wg, WgState::Sleeping, self.now + t);
                    self.trace
                        .record(self.now + t, wg, TraceEvent::Sleep { cycles: n });
                    self.events
                        .schedule(self.now + t + n, Event::Continue(wg, token));
                    return;
                }
                Inst::Ld(d, m) => {
                    let addr = self.resolve(wgu, m);
                    self.wgs[wgu].pc = pc + 1;
                    let cu = self.wgs[wgu].cu.expect("running WG has a CU");
                    let issue = self.now + t;
                    let l1 = self.cus[cu].l1_mut();
                    let (value, done) = if l1.access(addr).is_hit() {
                        (self.l2.peek(addr), issue + self.cus[cu].l1_latency())
                    } else {
                        let (v, comp) = self.l2.read(issue + self.cus[cu].l1_latency(), addr);
                        (v, comp.done)
                    };
                    self.wgs[wgu].parked = Some(ParkedResponse {
                        dst: Some(d),
                        value,
                    });
                    let token = self.wgs[wgu].bump_token();
                    self.events.schedule(done, Event::Response(wg, token));
                    return;
                }
                Inst::St(m, o) => {
                    let addr = self.resolve(wgu, m);
                    let value = self.operand(wgu, o);
                    self.wgs[wgu].pc = pc + 1;
                    let cu = self.wgs[wgu].cu.expect("running WG has a CU");
                    // Write-through: update L1 timing state and send to L2;
                    // the wavefront does not wait for the write to land.
                    self.cus[cu].l1_mut().access(addr);
                    let old = self.l2.peek(addr);
                    let (_, monitored) = self.l2.write(self.now + t, addr, value);
                    if old != value {
                        self.last_progress = self.now + t;
                    }
                    self.notify_monitored(MonitoredUpdate {
                        addr,
                        old,
                        new: value,
                        wrote: true,
                        monitored,
                        by_wg: wg,
                    });
                }
                Inst::Atom {
                    op,
                    dst,
                    mem,
                    operand,
                    expected,
                } => {
                    self.issue_atomic(wg, t, op, dst, mem, operand, expected);
                    return;
                }
                Inst::Wait { mem, expected } => {
                    self.issue_wait(wg, t, mem, expected);
                    return;
                }
                Inst::Halt => {
                    self.finish_wg(wg, self.now + t);
                    return;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_atomic(
        &mut self,
        wg: WgId,
        t: Cycle,
        op: awg_mem::AtomicOp,
        dst: awg_isa::Reg,
        mem: Mem,
        operand: Operand,
        expected: Option<Operand>,
    ) {
        let wgu = wg as usize;
        let addr = self.resolve(wgu, mem);
        let operand = self.operand(wgu, operand);
        let expected = expected.map(|e| self.operand(wgu, e));
        self.wgs[wgu].pc += 1;
        self.wgs[wgu].atomics += 1;
        if self.wgs[wgu].last_atomic == Some(addr) {
            self.wgs[wgu].atomic_streak += 1;
        } else {
            self.wgs[wgu].last_atomic = Some(addr);
            self.wgs[wgu].atomic_streak = 1;
        }
        self.trace
            .record(self.now + t, wg, TraceEvent::AtomicIssue { addr });
        let comp = self.l2.atomic(
            self.now + t,
            AtomicRequest {
                op,
                addr,
                operand,
                expected,
            },
        );
        if comp.result.wrote && comp.result.new != comp.result.old {
            self.last_progress = comp.committed;
        }
        self.notify_monitored(MonitoredUpdate {
            addr,
            old: comp.result.old,
            new: comp.result.new,
            wrote: comp.result.wrote,
            monitored: comp.was_monitored,
            by_wg: wg,
        });
        self.trace
            .record(comp.done, wg, TraceEvent::AtomicDone { addr });
        self.wgs[wgu].parked = Some(ParkedResponse {
            dst: Some(dst),
            value: comp.result.old,
        });
        if comp.result.satisfied {
            if self.wgs[wgu].wake_pending_check {
                self.wgs[wgu].wake_pending_check = false;
            }
            self.wgs[wgu].pending_directive = None;
            if expected.is_some() {
                // A waiting condition was met: that is forward progress.
                // (Plain atomic loads in a spin loop are not — the deadlock
                // detector must still see a stuck machine through them.)
                self.last_progress = comp.committed;
            }
        } else {
            let cond = SyncCond {
                addr,
                expected: expected.expect("unsatisfied atomic has an expectation"),
            };
            if self.wgs[wgu].wake_pending_check {
                self.wgs[wgu].wake_pending_check = false;
                self.unnecessary_resumes += 1;
            }
            self.trace.record(
                comp.committed,
                wg,
                TraceEvent::SyncFail {
                    addr,
                    expected: cond.expected,
                },
            );
            let fail = SyncFail {
                wg,
                cond,
                observed: comp.result.old,
                via_wait_inst: false,
            };
            let directive = self.with_policy(|p, ctx| p.on_sync_fail(ctx, &fail));
            self.wgs[wgu].cond = Some(cond);
            self.wgs[wgu].pending_directive = Some(directive);
        }
        let token = self.wgs[wgu].bump_token();
        self.events.schedule(comp.done, Event::Response(wg, token));
    }

    fn issue_wait(&mut self, wg: WgId, t: Cycle, mem: Mem, expected: Operand) {
        let wgu = wg as usize;
        let addr = self.resolve(wgu, mem);
        let expected = self.operand(wgu, expected);
        self.wgs[wgu].pc += 1;
        // The arm request travels to the L2 like a light access.
        let (observed, comp) = self.l2.read(self.now + t, addr);
        let cond = SyncCond { addr, expected };
        self.trace
            .record(comp.done, wg, TraceEvent::SyncFail { addr, expected });
        let fail = SyncFail {
            wg,
            cond,
            observed,
            via_wait_inst: true,
        };
        let directive = self.with_policy(|p, ctx| p.on_sync_fail(ctx, &fail));
        let directive = self.chaos_safe_directive(directive);
        self.wgs[wgu].cond = Some(cond);
        self.wgs[wgu].pending_directive = Some(directive);
        self.wgs[wgu].parked = Some(ParkedResponse {
            dst: None,
            value: observed,
        });
        let token = self.wgs[wgu].bump_token();
        self.events.schedule(comp.done, Event::Response(wg, token));
    }

    fn finish_wg(&mut self, wg: WgId, at: Cycle) {
        let wgu = wg as usize;
        self.wgs[wgu].bump_token();
        self.set_wg_state(wg, WgState::Finished, at);
        self.wgs[wgu].finished_at = Some(at);
        self.release_cu(wg);
        self.finished += 1;
        self.last_progress = at;
        self.trace.record(at, wg, TraceEvent::Finish);
        self.with_policy(|p, ctx| p.on_wg_finished(ctx, wg));
        self.try_dispatch();
    }

    // ---------------------------------------------------------------------
    // Event handlers
    // ---------------------------------------------------------------------

    fn token_ok(&self, wg: WgId, token: u64) -> bool {
        self.wgs[wg as usize].token == token
    }

    /// Delivers the parked response into the register file and resumes
    /// interpretation.
    fn deliver_and_advance(&mut self, wg: WgId) {
        let wgu = wg as usize;
        if let Some(parked) = self.wgs[wgu].parked.take() {
            if let Some(dst) = parked.dst {
                self.wgs[wgu].regs.set(dst, parked.value);
            }
        }
        self.wgs[wgu].cond = None;
        self.wgs[wgu].timeout_at = None;
        if self.wgs[wgu].state != WgState::Running {
            self.set_wg_state(wg, WgState::Running, self.now);
        }
        if self.wgs[wgu].force_out && !self.cus[self.wgs[wgu].cu.expect("resident")].is_enabled() {
            // Preempted mid-flight by the resource-loss event: save context
            // and requeue as ready instead of continuing.
            self.wgs[wgu].force_out = false;
            self.wgs[wgu].woke = true;
            self.begin_swap_out(wg);
            return;
        }
        self.advance(wg);
    }

    fn enter_wait(&mut self, wg: WgId, release: bool, timeout: Option<Cycle>) {
        let wgu = wg as usize;
        self.wgs[wgu].timeout_at = timeout.map(|t| self.now + t);
        let force = self.wgs[wgu].force_out;
        if release || force {
            self.wgs[wgu].force_out = false;
            self.begin_swap_out(wg);
        } else {
            let _ = self.wgs[wgu].bump_token();
            self.set_wg_state(wg, WgState::Stalled, self.now);
            self.trace.record(self.now, wg, TraceEvent::Stall);
        }
        self.rearm_timeout(wg);
    }

    fn handle_response(&mut self, wg: WgId) {
        let wgu = wg as usize;
        match self.wgs[wgu].pending_directive.take() {
            None => self.deliver_and_advance(wg),
            Some(WaitDirective::Retry) => self.deliver_and_advance(wg),
            Some(WaitDirective::SleepFor(n)) => {
                let token = self.wgs[wgu].bump_token();
                self.set_wg_state(wg, WgState::Sleeping, self.now);
                self.trace
                    .record(self.now, wg, TraceEvent::Sleep { cycles: n });
                self.events
                    .schedule(self.now + n, Event::Continue(wg, token));
            }
            Some(WaitDirective::Wait { release, timeout }) => {
                if self.wgs[wgu].woke {
                    // A wake already arrived for this condition: retry now.
                    self.wgs[wgu].woke = false;
                    self.resumes += 1;
                    self.deliver_and_advance(wg);
                } else {
                    self.enter_wait(wg, release, timeout);
                }
            }
        }
    }

    fn handle_wake(&mut self, wg: WgId) {
        let wgu = wg as usize;
        if let Some(since) = self.wgs[wgu].wait_since {
            let h = self.stats.hist("wait_episode_cycles");
            self.stats.observe(h, self.now.saturating_sub(since));
        }
        let cond = self.wgs[wgu].cond;
        match self.wgs[wgu].state {
            WgState::Stalled => {
                self.resumes += 1;
                if let Some(c) = cond {
                    if self.l2.peek(c.addr) != c.expected {
                        // Condition does not hold at delivery: the retry
                        // will fail (MonRS-style sporadic resume).
                        self.wgs[wgu].wake_pending_check = true;
                    }
                    self.with_policy(|p, ctx| p.on_wake_delivered(ctx, wg, &c));
                }
                self.trace.record(self.now, wg, TraceEvent::Resume);
                self.deliver_and_advance(wg);
            }
            WgState::SwappedWaiting => {
                self.resumes += 1;
                if let Some(c) = cond {
                    if self.l2.peek(c.addr) != c.expected {
                        self.wgs[wgu].wake_pending_check = true;
                    }
                    self.with_policy(|p, ctx| p.on_wake_delivered(ctx, wg, &c));
                }
                let _ = self.wgs[wgu].bump_token();
                self.set_wg_state(wg, WgState::ReadySwapped, self.now);
                self.ready.push_back(wg);
                self.trace.record(self.now, wg, TraceEvent::Resume);
                self.try_dispatch();
            }
            state => {
                // A token-valid wake reached a WG that is not waiting. Every
                // legal transition out of a waiting state bumps the token,
                // so this delivery was aimed at a running or descheduled WG
                // — exactly the misdelivery the oracle exists to catch.
                if self.oracle_on {
                    self.record_violation(
                        InvariantKind::MisdeliveredWake,
                        format!("wake delivered to WG {wg} in state {state:?}"),
                    );
                }
            }
        }
    }

    fn handle_wait_timeout(&mut self, wg: WgId) {
        let wgu = wg as usize;
        if !matches!(
            self.wgs[wgu].state,
            WgState::Stalled | WgState::SwappedWaiting
        ) {
            return;
        }
        let Some(cond) = self.wgs[wgu].cond else {
            return;
        };
        self.trace.record(self.now, wg, TraceEvent::Timeout);
        let action = self.with_policy(|p, ctx| p.on_wait_timeout(ctx, wg, &cond));
        match action {
            TimeoutAction::Wake => {
                self.wgs[wgu].timeout_at = None;
                self.handle_wake(wg);
            }
            TimeoutAction::Escalate { release, timeout } => {
                let timeout = if self.fault_plan.is_some() && timeout.is_none() {
                    Some(CHAOS_BACKSTOP_TIMEOUT)
                } else {
                    timeout
                };
                self.wgs[wgu].timeout_at = timeout.map(|t| self.now + t);
                if release && self.wgs[wgu].state == WgState::Stalled {
                    self.begin_swap_out(wg);
                } else {
                    let _ = self.wgs[wgu].bump_token();
                }
                self.rearm_timeout(wg);
            }
        }
    }

    fn handle_swap_out_done(&mut self, wg: WgId) {
        let wgu = wg as usize;
        debug_assert_eq!(self.wgs[wgu].state, WgState::SwappingOut);
        self.release_cu(wg);
        self.trace.record(self.now, wg, TraceEvent::SwapOutDone);
        let token_bump = self.wgs[wgu].bump_token();
        let _ = token_bump;
        if self.wgs[wgu].woke || self.wgs[wgu].cond.is_none() {
            self.wgs[wgu].woke = false;
            self.set_wg_state(wg, WgState::ReadySwapped, self.now);
            self.ready.push_back(wg);
        } else {
            self.set_wg_state(wg, WgState::SwappedWaiting, self.now);
            self.rearm_timeout(wg);
        }
        self.try_dispatch();
    }

    fn handle_resource_loss(&mut self, cu: usize) {
        self.cus[cu].disable();
        let residents: Vec<WgId> = self.cus[cu].resident().to_vec();
        for wg in residents {
            let wgu = wg as usize;
            match self.wgs[wgu].state {
                WgState::Running | WgState::Sleeping => {
                    // Preempt at the next event boundary.
                    self.wgs[wgu].force_out = true;
                    self.wgs[wgu].fault_evicted = true;
                }
                WgState::Stalled => {
                    // Still waiting: save now; it stays a waiting WG.
                    self.wgs[wgu].fault_evicted = true;
                    self.begin_swap_out(wg);
                }
                WgState::Dispatching => {
                    // Cancel the dispatch and requeue at the front.
                    self.wgs[wgu].bump_token();
                    self.release_cu(wg);
                    self.wgs[wgu].fault_evicted = true;
                    self.set_wg_state(wg, WgState::Pending, self.now);
                    self.pending.push_front(wg);
                }
                WgState::SwappingIn => {
                    self.wgs[wgu].force_out = true;
                    self.wgs[wgu].fault_evicted = true;
                }
                _ => {}
            }
        }
        self.try_dispatch();
    }

    fn handle_fault(&mut self, idx: usize) {
        let Some(kind) = self.fault_plan.as_ref().map(|p| p.events[idx].kind) else {
            return;
        };
        match kind {
            FaultKind::CuLoss { cu } => {
                self.chaos.cu_losses += 1;
                self.handle_resource_loss(cu);
            }
            FaultKind::CuRestore { cu } => {
                self.cus[cu].enable();
                self.last_progress = self.now;
                self.try_dispatch();
            }
            FaultKind::WakeChaos { mode, window } => {
                self.chaos.wake_windows += 1;
                self.wake_chaos = Some((mode, self.now + window));
            }
            FaultKind::CtxStall { extra, window } => {
                self.ctx_stall_extra = extra;
                self.ctx_stall_until = self.now + window;
            }
            FaultKind::Policy(fault) => {
                self.chaos.policy_injections += 1;
                let wakes = self.with_policy(|p, ctx| p.on_fault(ctx, &fault));
                self.apply_wakes(wakes);
            }
        }
    }

    fn handle_cp_tick(&mut self) {
        let wakes = self.with_policy(|p, ctx| p.on_cp_tick(ctx));
        self.apply_wakes(wakes);
        if let Some(period) = self.policy.cp_tick_period() {
            if (self.finished as u64) < self.kernel.num_wgs {
                self.events.schedule(self.now + period, Event::CpTick);
            }
        }
    }

    /// Which subsystem the self-profiler attributes this event to.
    fn event_subsystem(event: &Event) -> Subsystem {
        match event {
            Event::Continue(..) | Event::Response(..) | Event::DispatchDone(..) => {
                Subsystem::Execute
            }
            Event::WakeDeliver(..) | Event::WaitTimeout(..) | Event::CpTick | Event::Fault(_) => {
                Subsystem::Wakeup
            }
            Event::SwapOutDone(..) | Event::SwapInDone(..) => Subsystem::ContextSwitch,
            Event::ResourceLoss(_) | Event::ResourceRestore(_) | Event::ProgressCheck => {
                Subsystem::Other
            }
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Continue(wg, token) => {
                if !self.token_ok(wg, token) {
                    return;
                }
                let wgu = wg as usize;
                if self.wgs[wgu].state == WgState::Sleeping {
                    self.set_wg_state(wg, WgState::Running, self.now);
                }
                if self.wgs[wgu].parked.is_some() {
                    // Sleep-then-deliver (backoff response).
                    self.deliver_and_advance(wg);
                } else if self.wgs[wgu].force_out
                    && !self.cus[self.wgs[wgu].cu.expect("resident")].is_enabled()
                {
                    self.wgs[wgu].force_out = false;
                    self.wgs[wgu].woke = true;
                    self.begin_swap_out(wg);
                } else {
                    self.advance(wg);
                }
            }
            Event::Response(wg, token) => {
                if self.token_ok(wg, token) {
                    self.handle_response(wg);
                }
            }
            Event::WakeDeliver(wg, token) => {
                if self.token_ok(wg, token) {
                    self.handle_wake(wg);
                }
            }
            Event::WaitTimeout(wg, token) => {
                if self.token_ok(wg, token) {
                    self.handle_wait_timeout(wg);
                }
            }
            Event::SwapOutDone(wg, token) => {
                if self.token_ok(wg, token) {
                    self.handle_swap_out_done(wg);
                }
            }
            Event::SwapInDone(wg, token) => {
                if self.token_ok(wg, token) {
                    let wgu = wg as usize;
                    debug_assert_eq!(self.wgs[wgu].state, WgState::SwappingIn);
                    self.deliver_and_advance(wg);
                }
            }
            Event::DispatchDone(wg, token) => {
                if self.token_ok(wg, token) {
                    let wgu = wg as usize;
                    debug_assert_eq!(self.wgs[wgu].state, WgState::Dispatching);
                    if self.wgs[wgu].dispatched_at.is_none() {
                        self.wgs[wgu].dispatched_at = Some(self.now);
                    }
                    self.last_progress = self.now;
                    self.set_wg_state(wg, WgState::Running, self.now);
                    self.advance(wg);
                }
            }
            Event::CpTick => self.handle_cp_tick(),
            Event::Fault(idx) => self.handle_fault(idx),
            Event::ResourceLoss(cu) => self.handle_resource_loss(cu),
            Event::ResourceRestore(cu) => {
                self.cus[cu].enable();
                self.last_progress = self.now;
                self.try_dispatch();
            }
            Event::ProgressCheck => {
                if (self.finished as u64) < self.kernel.num_wgs {
                    if self.now.saturating_sub(self.last_progress) > self.config.quiescence_cycles {
                        self.deadlocked = Some(self.now);
                    } else {
                        self.events.schedule(
                            self.now + self.config.quiescence_cycles / 2,
                            Event::ProgressCheck,
                        );
                    }
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // Run loop
    // ---------------------------------------------------------------------

    /// Forensic snapshot of every unfinished WG's wait situation, the
    /// policy's live monitor entries, and the waits-for summary.
    fn hang_report(&self) -> HangReport {
        let mut unfinished = Vec::new();
        let mut waits_for: BTreeMap<Addr, Vec<WgId>> = BTreeMap::new();
        // Below this many consecutive atomics to one address, a WG without
        // a declared condition is presumed computing, not spinning.
        const SPIN_STREAK: u64 = 8;
        for wg in &self.wgs {
            if wg.state == WgState::Finished {
                continue;
            }
            let spinning_on = match wg.cond {
                Some(_) => None,
                None => wg
                    .last_atomic
                    .filter(|_| wg.atomic_streak >= SPIN_STREAK)
                    .map(|a| (a, wg.atomic_streak)),
            };
            let blocked_addr = wg.cond.map(|c| c.addr).or(spinning_on.map(|(a, _)| a));
            unfinished.push(WgWaitInfo {
                wg: wg.id,
                state: wg.state,
                pc: wg.pc,
                cond: wg.cond,
                spinning_on,
                observed: blocked_addr.map(|a| self.l2.peek(a)),
                waited: wg.wait_since.map_or(0, |s| self.now.saturating_sub(s)),
                timeout_in: wg.timeout_at.map(|t| t.saturating_sub(self.now)),
            });
            if let Some(a) = blocked_addr {
                waits_for.entry(a).or_default().push(wg.id);
            }
        }
        HangReport {
            at: self.now,
            unfinished,
            monitor_entries: self.policy.monitor_snapshot(),
            waits_for: waits_for.into_iter().collect(),
        }
    }

    /// Absolute telemetry totals at `cycle` (the snapshot window boundary).
    fn snapshot_sample(&self, cycle: Cycle) -> SnapshotSample {
        let mut state_counts = [0u64; PROGRESS_STATES];
        let mut cause_counts = [0u64; ATTRIBUTION_CAUSES];
        for wg in &self.wgs {
            state_counts[wg.state.progress_class().index()] += 1;
            cause_counts[self.cause_for(wg.id as usize, wg.state).index()] += 1;
        }
        let (atomics, _, _) = self.l2.op_counts();
        SnapshotSample {
            cycle,
            occupancy: self.cus.iter().map(|c| c.occupancy()).collect(),
            state_counts,
            cause_counts,
            atomics_total: atomics,
            swap_outs_total: self.switches_out,
            swap_ins_total: self.switches_in,
        }
    }

    fn summarize(&mut self) -> RunSummary {
        let now = self.now;
        if let Some(start) = self.run_started {
            self.run_wall = start.elapsed();
        }
        let mut insts = 0;
        let mut atomics = 0;
        let mut running = 0;
        let mut waiting = 0;
        for wg in &self.wgs {
            insts += wg.insts;
            atomics += wg.atomics;
            running += wg.running_cycles(now);
            waiting += wg.waiting_cycles + wg.wait_since.map_or(0, |s| now.saturating_sub(s));
        }
        // Fold memory-system counters into the registry.
        let (l2_atomics, l2_reads, l2_writes) = self.l2.op_counts();
        let (hits, misses, bypasses) = self.l2.cache_stats();
        let (dram_accesses, dram_queued) = self.l2.dram_stats();
        for (name, value) in [
            ("l2_atomics", l2_atomics),
            ("l2_reads", l2_reads),
            ("l2_writes", l2_writes),
            ("l2_hits", hits),
            ("l2_misses", misses),
            ("l2_bypasses", bypasses),
            ("dram_accesses", dram_accesses),
            ("dram_queued_cycles", dram_queued),
        ] {
            let c = self.stats.counter(name);
            let prev = self.stats.get(c);
            self.stats.add(c, value.saturating_sub(prev));
        }
        if self.fault_plan.is_some() {
            for (name, value) in [
                ("fault_cu_losses", self.chaos.cu_losses),
                ("fault_wake_windows", self.chaos.wake_windows),
                ("fault_wakes_dropped", self.chaos.wakes_dropped),
                ("fault_wakes_delayed", self.chaos.wakes_delayed),
                ("fault_wakes_duplicated", self.chaos.wakes_duplicated),
                ("fault_wakes_reordered", self.chaos.wakes_reordered),
                ("fault_policy_injections", self.chaos.policy_injections),
                ("fault_ctx_stall_hits", self.chaos.ctx_stall_hits),
            ] {
                let c = self.stats.counter(name);
                let prev = self.stats.get(c);
                self.stats.add(c, value.saturating_sub(prev));
            }
        }
        if let Some(mut hub) = self.telemetry.take() {
            hub.finalize(now);
            self.stats.absorb(hub.stats());
            self.telemetry = Some(hub);
        }
        self.policy.report(&mut self.stats);
        RunSummary {
            cycles: now,
            insts,
            atomics,
            running_cycles: running,
            waiting_cycles: waiting,
            switches_out: self.switches_out,
            switches_in: self.switches_in,
            resumes: self.resumes,
            unnecessary_resumes: self.unnecessary_resumes,
            stats: self.stats.clone(),
        }
    }

    /// Runs the kernel to completion, deadlock, or the cycle cap.
    pub fn run(&mut self) -> RunOutcome {
        self.run_started = Some(Instant::now());
        // One-time prologue. A restored machine skips it: its calendar
        // already carries the experiment events, CP tick, and progress
        // check, and its WGs were dispatched in the original process.
        if !self.started {
            self.started = true;
            // Schedule experiment events.
            for &(cu, at) in &self.resource_loss.clone() {
                self.events.schedule(at, Event::ResourceLoss(cu));
            }
            for &(cu, at) in &self.resource_restore.clone() {
                self.events.schedule(at, Event::ResourceRestore(cu));
            }
            if let Some(plan) = &self.fault_plan {
                let times: Vec<(usize, Cycle)> = plan
                    .events
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.at))
                    .collect();
                for (i, at) in times {
                    self.events.schedule(at, Event::Fault(i));
                }
            }
            if let Some(period) = self.policy.cp_tick_period() {
                self.events.schedule(period, Event::CpTick);
            }
            self.events
                .schedule(self.config.quiescence_cycles / 2, Event::ProgressCheck);
            self.try_dispatch();
        }

        loop {
            if self.finished as u64 == self.kernel.num_wgs {
                return RunOutcome::Completed(self.summarize());
            }
            if let Some(at) = self.deadlocked {
                let unfinished = self.kernel.num_wgs as usize - self.finished;
                let hang = self.hang_report();
                return RunOutcome::Deadlocked {
                    at,
                    unfinished,
                    summary: self.summarize(),
                    hang,
                };
            }
            // Checkpoint poll: snapshot at each interval boundary the
            // machine is about to cross, *before* popping the crossing
            // event — the snapshot must keep it in the calendar. The
            // cursor is advanced past the next event first so one gap
            // yields one snapshot, and the serialized cursor resumes the
            // same boundary grid after restore.
            if self.checkpoint.is_some() {
                if let Some(next_cycle) = self.events.peek_cycle() {
                    if self.checkpoint_next <= next_cycle {
                        let every = self.checkpoint.as_ref().map(|s| s.every).unwrap_or(1);
                        while self.checkpoint_next <= next_cycle {
                            self.checkpoint_next += every;
                        }
                        self.write_checkpoint_now();
                    }
                }
            }
            let Some((cycle, event)) = self.events.pop() else {
                // No pending events with unfinished WGs: every WG waits on a
                // notification that can never arrive.
                let at = self.now;
                let unfinished = self.kernel.num_wgs as usize - self.finished;
                let hang = self.hang_report();
                return RunOutcome::Deadlocked {
                    at,
                    unfinished,
                    summary: self.summarize(),
                    hang,
                };
            };
            if cycle > self.config.max_cycles {
                let at = self.now;
                let unfinished = self.kernel.num_wgs as usize - self.finished;
                let hang = self.hang_report();
                return RunOutcome::CycleLimit {
                    at,
                    unfinished,
                    summary: self.summarize(),
                    hang,
                };
            }
            if let Some(cause) = self.watchdog.as_ref().and_then(|wd| wd.check(cycle)) {
                let at = self.now;
                let unfinished = self.kernel.num_wgs as usize - self.finished;
                let hang = self.hang_report();
                return RunOutcome::Cancelled {
                    at,
                    unfinished,
                    cause,
                    summary: self.summarize(),
                    hang,
                };
            }
            if let Some(window) = self.digest_window {
                // Digest at each window boundary the machine is about to
                // cross: all events strictly before the boundary have been
                // handled, none at-or-after it have.
                while self.digest_next <= cycle {
                    let d = self.digest();
                    self.digest_trail.push(d);
                    self.digest_next += window;
                }
            }
            // Metric snapshots use the same boundary discipline as digests:
            // the sample reflects all events strictly before the boundary.
            while let Some(boundary) = self.telemetry.as_ref().and_then(|h| h.due_snapshot(cycle)) {
                let sample = self.snapshot_sample(boundary);
                if let Some(hub) = self.telemetry.as_mut() {
                    hub.push_snapshot(sample);
                }
            }
            self.now = cycle;
            let profiling = self.telemetry.as_ref().is_some_and(|h| h.profiling());
            if profiling || self.hotprof.is_some() {
                let subsystem = Self::event_subsystem(&event);
                let lane = event.lane();
                let t0 = Instant::now();
                self.handle(event);
                let wall = t0.elapsed();
                if profiling {
                    if let Some(hub) = self.telemetry.as_mut() {
                        hub.profile_note(subsystem, wall);
                    }
                }
                let depth = self.events.len();
                if let Some(hot) = self.hotprof.as_mut() {
                    hot.events_popped += 1;
                    hot.note_event(lane, wall);
                    hot.heap_high_water = hot.heap_high_water.max(depth);
                }
            } else {
                self.handle(event);
            }
            if self.oracle_on {
                if profiling {
                    let t0 = Instant::now();
                    self.oracle_sweep();
                    let wall = t0.elapsed();
                    if let Some(hub) = self.telemetry.as_mut() {
                        hub.profile_note(Subsystem::Check, wall);
                    }
                } else {
                    self.oracle_sweep();
                }
            }
        }
    }

    /// Per-WG `(running, waiting)` cycle breakdown at the current time
    /// (Fig 11).
    pub fn wg_breakdown(&self) -> Vec<(u64, u64)> {
        self.wgs
            .iter()
            .map(|w| {
                let waiting =
                    w.waiting_cycles + w.wait_since.map_or(0, |s| self.now.saturating_sub(s));
                (w.running_cycles(self.now), waiting)
            })
            .collect()
    }
}
