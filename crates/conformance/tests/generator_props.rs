//! Property tests for the seeded litmus generator, over the whole seed
//! space rather than the unit tests' fixed handful:
//!
//! * any seed's program verifies, survives a disassemble → assemble text
//!   round-trip, and its spec survives the JSON codec;
//! * the declared post-conditions hold on the fair functional
//!   interpreter, in every sync style a policy can request;
//! * generation is a pure function of the seed: two independent builds
//!   from the same seed produce identical specs and programs;
//! * the generator's range is wide — at least 100 distinct programs in a
//!   modest seed window, each replayable from its seed alone.

use std::collections::HashSet;

use awg_conformance::generator::{generate_batch, LitmusSpec};
use awg_gpu::SyncStyle;
use awg_isa::{assemble, Machine};
use proptest::prelude::*;

const ALL_STYLES: [SyncStyle; 4] = [
    SyncStyle::Busy,
    SyncStyle::Backoff,
    SyncStyle::WaitInst,
    SyncStyle::WaitingAtomic,
];

/// Fuel bound for the functional interpreter; generated kernels finish in
/// well under a million steps, so hitting this means divergence.
const FUEL: u64 = 50_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_seed_builds_a_verified_assemblable_program(seed in any::<u64>()) {
        let spec = LitmusSpec::generate(seed);
        for style in ALL_STYLES {
            let litmus = spec.build(style);
            prop_assert!(litmus.program.verify().is_ok(), "{} {style:?}", spec.name());
            prop_assert!(!litmus.finals.is_empty(), "{}", spec.name());
            // The text form is a faithful second encoding of the program.
            // The assembler numbers labels by first appearance while the
            // builder numbers by creation order, so compare after one
            // normalization pass: reassembly must succeed, preserve every
            // instruction, and be a fixed point of the text codec.
            let text = litmus.program.disassemble();
            let back = assemble(&text, litmus.program.name())
                .unwrap_or_else(|e| panic!("{} {style:?}: {e}", spec.name()));
            prop_assert!(back.verify().is_ok(), "{} {style:?}", spec.name());
            prop_assert_eq!(back.len(), litmus.program.len(), "{} {:?}", spec.name(), style);
            let norm = back.disassemble();
            let again = assemble(&norm, litmus.program.name())
                .unwrap_or_else(|e| panic!("{} {style:?}: {e}", spec.name()));
            prop_assert_eq!(again.disassemble(), norm, "{} {:?}", spec.name(), style);
        }
    }

    #[test]
    fn any_spec_round_trips_through_json(seed in any::<u64>()) {
        let spec = LitmusSpec::generate(seed);
        let back = LitmusSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(spec, back);
        prop_assert_eq!(spec.name(), back.name());
    }

    #[test]
    fn post_conditions_hold_on_the_fair_reference_interpreter(seed in any::<u64>()) {
        // The functional machine steps all WGs round-robin — a fair
        // scheduler with everyone resident — so every generated kernel
        // must terminate there with exactly its declared final memory.
        let spec = LitmusSpec::generate(seed);
        for style in ALL_STYLES {
            let litmus = spec.build(style);
            let mut m = Machine::new(litmus.program.clone(), spec.num_wgs, spec.num_wgs);
            m.run(FUEL)
                .unwrap_or_else(|e| panic!("{} {style:?}: {e}", spec.name()));
            for &(addr, expected) in &litmus.finals {
                prop_assert_eq!(
                    m.mem().load(addr),
                    expected,
                    "{} {:?} @ {:#x}",
                    spec.name(),
                    style,
                    addr
                );
            }
        }
    }

    #[test]
    fn same_seed_is_byte_identical(seed in any::<u64>()) {
        let a = LitmusSpec::generate(seed);
        let b = LitmusSpec::generate(seed);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.to_json(), b.to_json());
        for style in ALL_STYLES {
            let pa = a.build(style);
            let pb = b.build(style);
            prop_assert_eq!(pa.program, pb.program, "{} {:?}", a.name(), style);
            prop_assert_eq!(pa.finals, pb.finals, "{} {:?}", a.name(), style);
        }
    }
}

#[test]
fn at_least_100_distinct_programs_each_replayable_by_seed() {
    // The batch a single master seed produces must be genuinely diverse:
    // 128 draws must yield over 100 distinct programs (names encode seed
    // and shape, so dedupe by the program text itself — the strongest
    // notion of "distinct").
    let batch = generate_batch(0xD15_7111C7, 128);
    let mut distinct = HashSet::new();
    for spec in &batch {
        let litmus = spec.build(SyncStyle::WaitingAtomic);
        distinct.insert(litmus.program.disassemble());

        // Replay from the serialized spec alone, as the journal would.
        let replayed = LitmusSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(&replayed, spec);
        assert_eq!(
            replayed.build(SyncStyle::WaitingAtomic).program,
            litmus.program,
            "{}",
            spec.name()
        );
    }
    assert!(
        distinct.len() >= 100,
        "only {} distinct programs in 128 draws",
        distinct.len()
    );
}
