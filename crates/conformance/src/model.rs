//! Executable progress-model contracts.
//!
//! A progress model is tested as three coupled pieces:
//!
//! 1. **The adversary** ([`adversary_plan`]): a seeded [`FaultPlan`] the
//!    chaos engine injects while the litmus runs on the oversubscribed
//!    1-CU lab machine. Every model's adversary revokes occupancy once (a
//!    CU flap — the paper's §VI resource-loss scenario) and perturbs
//!    context-switch timing; stronger models add monitor evictions
//!    (LOBE) and dropped wakes plus Bloom pollution (Fair).
//! 2. **The litmus demand** ([`crate::generator::LitmusPattern::demand`]):
//!    which model must hold for the kernel to terminate at all.
//! 3. **The trace obligation** ([`check_obligations`]): a predicate over
//!    the observed schedule trace — dispatch/eviction/resume events —
//!    that the completed run's schedule must satisfy.
//!
//! A policy satisfies model `M` when every `M`-demand litmus, run under
//! `M`'s adversary, completes with intact post-state, zero invariant
//! violations, and a trace meeting `M`'s obligation.

use awg_gpu::{FaultEvent, FaultKind, FaultPlan, TraceEvent, TraceRecord, WakeChaosMode};
use awg_gpu::{PolicyFault, WgId};
use awg_sim::Xoshiro256StarStar;

pub use awg_core::policies::ProgressClaim as ProgressModel;

/// The three models, weakest first (the classification ladder walks this).
pub const ALL_MODELS: [ProgressModel; 3] = [
    ProgressModel::OccupancyBound,
    ProgressModel::LinearOccupancyBound,
    ProgressModel::Fair,
];

fn model_salt(model: ProgressModel) -> u64 {
    match model {
        ProgressModel::OccupancyBound => 0x0be0_0be0_0be0_0be0,
        ProgressModel::LinearOccupancyBound => 0x10be_10be_10be_10be,
        ProgressModel::Fair => 0xfa1f_fa1f_fa1f_fa1f,
    }
}

/// Generates model `M`'s adversarial schedule for the 1-CU lab machine.
///
/// Deterministic in `(model, seed)`. All models revoke occupancy once
/// (unplug the only CU for 1k–5k cycles — far under the 600k quiescence
/// window) and stall one context-switch window; LOBE adds two SyncMon
/// condition evictions; Fair additionally drops wakes in two windows and
/// pollutes the AWG Bloom predictor. Every fault is recoverable for a
/// policy that can reschedule swapped-out WGs, so surviving the adversary
/// is exactly the rescheduling obligation the paper's designs claim.
///
/// Fault times are tuned to the lab litmuses, which complete within a few
/// thousand cycles on the 1-CU machine when unmolested: the CU flap lands
/// inside the first 2k cycles so it strikes while work-groups are still
/// in flight.
pub fn adversary_plan(model: ProgressModel, seed: u64) -> FaultPlan {
    let mut rng = Xoshiro256StarStar::new(seed ^ model_salt(model));
    let mut events = Vec::new();
    // Occupancy revocation: flap the machine's only CU.
    let t = rng.next_range(300, 2_000);
    let outage = rng.next_range(1_000, 5_000);
    events.push(FaultEvent {
        at: t,
        kind: FaultKind::CuLoss { cu: 0 },
    });
    events.push(FaultEvent {
        at: t + outage,
        kind: FaultKind::CuRestore { cu: 0 },
    });
    // Context-switch turbulence.
    events.push(FaultEvent {
        at: rng.next_range(200, 4_000),
        kind: FaultKind::CtxStall {
            extra: rng.next_range(100, 800),
            window: rng.next_range(1_000, 8_000),
        },
    });
    if model >= ProgressModel::LinearOccupancyBound {
        for _ in 0..2 {
            events.push(FaultEvent {
                at: rng.next_range(500, 10_000),
                kind: FaultKind::Policy(PolicyFault::EvictConditions {
                    count: rng.next_range(1, 4) as usize,
                }),
            });
        }
    }
    if model >= ProgressModel::Fair {
        for _ in 0..2 {
            events.push(FaultEvent {
                at: rng.next_range(500, 8_000),
                kind: FaultKind::WakeChaos {
                    mode: WakeChaosMode::Drop,
                    window: rng.next_range(500, 4_000),
                },
            });
        }
        events.push(FaultEvent {
            at: rng.next_range(500, 8_000),
            kind: FaultKind::Policy(PolicyFault::BloomStorm {
                unique_values: rng.next_range(3, 8) as usize,
            }),
        });
    }
    events.sort_by_key(|e| e.at);
    FaultPlan { seed, events }
}

/// The outcome of checking a model's trace obligation.
#[derive(Debug, Clone, Default)]
pub struct ObligationReport {
    /// Human-readable violations; empty means the obligation holds.
    pub violations: Vec<String>,
    /// WGs that were swapped out and never resumed (Fair diagnosis).
    pub starved: Vec<WgId>,
}

impl ObligationReport {
    /// Whether the obligation holds.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Per-WG schedule bookkeeping distilled from the trace.
#[derive(Debug, Clone, Copy, Default)]
struct WgSchedule {
    first_dispatch: Option<u64>,
    swap_outs: u32,
    resumes: u32,
    finished: bool,
    resumed_after_last_swap_out: bool,
}

fn distill(records: &[TraceRecord], num_wgs: u64) -> Vec<WgSchedule> {
    let mut wgs = vec![WgSchedule::default(); num_wgs as usize];
    for r in records {
        let Some(s) = wgs.get_mut(r.wg as usize) else {
            continue;
        };
        match r.event {
            TraceEvent::Dispatch { .. } if s.first_dispatch.is_none() => {
                s.first_dispatch = Some(r.cycle);
            }
            TraceEvent::SwapOutDone => {
                s.swap_outs += 1;
                s.resumed_after_last_swap_out = false;
            }
            TraceEvent::Resume => {
                s.resumes += 1;
                s.resumed_after_last_swap_out = true;
            }
            TraceEvent::Finish => s.finished = true,
            _ => {}
        }
    }
    wgs
}

/// Checks model `M`'s obligation over the observed schedule trace.
///
/// All models demand a well-formed schedule: every WG dispatched at least
/// once and finished (the run-completion precondition is checked by the
/// caller; an unfinished run fails its cell before obligations are
/// consulted). On top of that:
///
/// * **LOBE** demands id-linear first dispatch: WG `i`'s first dispatch
///   never precedes WG `j`'s for `j < i`, the "linear" in linear
///   occupancy-bound execution.
/// * **Fair** demands eventual resume: no WG is left swapped out without a
///   later resume — the starved set is reported for diagnosis.
pub fn check_obligations(
    model: ProgressModel,
    records: &[TraceRecord],
    num_wgs: u64,
) -> ObligationReport {
    let mut report = ObligationReport::default();
    let wgs = distill(records, num_wgs);
    for (id, s) in wgs.iter().enumerate() {
        if s.first_dispatch.is_none() {
            report.violations.push(format!("wg {id} never dispatched"));
        }
        // Multiple fresh dispatches are legal: occupancy revocation can
        // catch a WG mid-dispatch, cancel it, and re-issue later.
        if !s.finished {
            report.violations.push(format!("wg {id} never finished"));
        }
        if s.swap_outs > 0 && !s.resumed_after_last_swap_out && !s.finished {
            report.starved.push(id as WgId);
        }
    }
    if model >= ProgressModel::LinearOccupancyBound {
        let mut last = None;
        for (id, s) in wgs.iter().enumerate() {
            let Some(at) = s.first_dispatch else { continue };
            if let Some((prev_id, prev_at)) = last {
                if at < prev_at {
                    report.violations.push(format!(
                        "first dispatch not id-linear: wg {id} @ {at} before wg {prev_id} @ {prev_at}"
                    ));
                }
            }
            last = Some((id, at));
        }
    }
    if model >= ProgressModel::Fair {
        for (id, s) in wgs.iter().enumerate() {
            if s.swap_outs > 0 && !s.resumed_after_last_swap_out && !s.finished {
                report.violations.push(format!(
                    "wg {id} starved: swapped out {} time(s), never resumed",
                    s.swap_outs
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_is_deterministic_and_ordered() {
        for model in ALL_MODELS {
            let a = adversary_plan(model, 42);
            let b = adversary_plan(model, 42);
            assert_eq!(a, b);
            assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
            assert!(!a.events.is_empty());
        }
    }

    #[test]
    fn adversaries_strengthen_up_the_ladder() {
        let obe = adversary_plan(ProgressModel::OccupancyBound, 7);
        let lobe = adversary_plan(ProgressModel::LinearOccupancyBound, 7);
        let fair = adversary_plan(ProgressModel::Fair, 7);
        assert!(obe.events.len() < lobe.events.len());
        assert!(lobe.events.len() < fair.events.len());
        // Every adversary revokes occupancy at least once.
        for plan in [&obe, &lobe, &fair] {
            assert!(plan
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::CuLoss { .. })));
        }
        // Only Fair drops wakes.
        assert!(fair.events.iter().any(|e| matches!(
            e.kind,
            FaultKind::WakeChaos {
                mode: WakeChaosMode::Drop,
                ..
            }
        )));
        assert!(!obe
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WakeChaos { .. } | FaultKind::Policy(_))));
    }

    fn rec(cycle: u64, wg: WgId, event: TraceEvent) -> TraceRecord {
        TraceRecord { cycle, wg, event }
    }

    #[test]
    fn clean_trace_satisfies_every_model() {
        let mut records = Vec::new();
        for wg in 0..3u32 {
            records.push(rec(10 + wg as u64, wg, TraceEvent::Dispatch { cu: 0 }));
        }
        // wg 2 round-trips through a context switch.
        records.push(rec(50, 2, TraceEvent::SwapOutStart));
        records.push(rec(60, 2, TraceEvent::SwapOutDone));
        records.push(rec(90, 2, TraceEvent::Resume));
        for wg in 0..3u32 {
            records.push(rec(100 + wg as u64, wg, TraceEvent::Finish));
        }
        for model in ALL_MODELS {
            let r = check_obligations(model, &records, 3);
            assert!(r.ok(), "{model:?}: {:?}", r.violations);
            assert!(r.starved.is_empty());
        }
    }

    #[test]
    fn lobe_rejects_out_of_order_first_dispatch() {
        let records = vec![
            rec(10, 1, TraceEvent::Dispatch { cu: 0 }),
            rec(20, 0, TraceEvent::Dispatch { cu: 0 }),
            rec(30, 0, TraceEvent::Finish),
            rec(40, 1, TraceEvent::Finish),
        ];
        assert!(check_obligations(ProgressModel::OccupancyBound, &records, 2).ok());
        let r = check_obligations(ProgressModel::LinearOccupancyBound, &records, 2);
        assert!(!r.ok());
        assert!(r.violations[0].contains("id-linear"), "{:?}", r.violations);
    }

    #[test]
    fn fair_reports_starved_wgs() {
        let records = vec![
            rec(10, 0, TraceEvent::Dispatch { cu: 0 }),
            rec(11, 1, TraceEvent::Dispatch { cu: 0 }),
            rec(20, 1, TraceEvent::SwapOutStart),
            rec(30, 1, TraceEvent::SwapOutDone),
            rec(40, 0, TraceEvent::Finish),
        ];
        let r = check_obligations(ProgressModel::Fair, &records, 2);
        assert!(!r.ok());
        assert_eq!(r.starved, vec![1]);
    }
}
