//! Progress-model conformance lab for the AWG scheduler family.
//!
//! The paper's central claim is a *progress model*: which work-groups a
//! scheduling policy guarantees will eventually run. This crate turns the
//! three standard GPU progress models into executable contracts and
//! classifies every policy against them:
//!
//! * **OBE** (occupancy-bound execution): work-groups that have become
//!   resident keep making progress; nothing is promised to the rest.
//! * **LOBE** (linear OBE): OBE, plus work-groups become resident for the
//!   first time in id order.
//! * **Fair**: every work-group eventually makes progress, resident or
//!   not — the guarantee independent forward progress needs.
//!
//! A conformance *cell* is one `(policy, model, litmus)` triple. The
//! litmus comes from the seeded generator ([`generator`]), which composes
//! synchronization patterns whose termination *demands* a given model.
//! The model contributes an adversary ([`model::adversary_plan`]) — a
//! seeded fault schedule of occupancy revocation, eviction pressure, and
//! (for Fair) dropped wakes — and a trace obligation
//! ([`model::check_obligations`]) over the observed schedule. The cell
//! runner ([`cell::run_cell`]) executes the triple on an oversubscribed
//! 1-CU machine with the invariant oracle armed; [`matrix`] aggregates
//! verdicts into the policy × model matrix and diffs it against a
//! committed golden copy.
//!
//! The harness drives whole campaigns (resumable, deterministic at any
//! parallelism) through `awg-harness`'s `conformance` module and CLI
//! subcommand; this crate holds everything policy-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod generator;
pub mod matrix;
pub mod model;

pub use cell::{run_cell, CellOutcome};
pub use generator::{anchor_specs, generate_batch, LitmusPattern, LitmusSpec, ALL_PATTERNS};
pub use matrix::{ConformanceMatrix, ModelVerdict, PolicyRow};
pub use model::{adversary_plan, check_obligations, ProgressModel, ALL_MODELS};
