//! The policy × model conformance matrix.
//!
//! Each row is one scheduling policy; each column is one progress model.
//! A cell aggregates every litmus verdict for that (policy, model) pair —
//! the cell is satisfied only when *every* litmus in the model's test set
//! is. The row's classification walks the ladder from the weakest model
//! up: a policy classified `Fair` satisfies all three models, `LOBE`
//! satisfies OBE and LOBE, `OBE` satisfies only OBE, and `none` fails
//! even the occupancy-bound obligation.
//!
//! [`ConformanceMatrix::to_csv`] is the regression surface: its output is
//! byte-stable for a fixed policy list and cell verdicts, and
//! [`ConformanceMatrix::diff_against`] compares it to a committed golden
//! copy cell by cell.

use awg_core::policies::PolicyKind;

use crate::model::{ProgressModel, ALL_MODELS};

/// Aggregated verdict for one (policy, model) matrix cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelVerdict {
    /// Litmus cells run for this (policy, model) pair.
    pub total: u32,
    /// Cells whose verdict was satisfied.
    pub sat: u32,
    /// Cells that ended in declared deadlock.
    pub deadlocks: u32,
}

impl ModelVerdict {
    /// Folds one cell outcome into the aggregate.
    pub fn record(&mut self, sat: bool, deadlocked: bool) {
        self.total += 1;
        if sat {
            self.sat += 1;
        }
        if deadlocked {
            self.deadlocks += 1;
        }
    }

    /// Whether the whole cell is satisfied: a non-empty test set with
    /// every litmus satisfied.
    pub fn is_sat(&self) -> bool {
        self.total > 0 && self.sat == self.total
    }

    /// One-word cell verdict: `sat`, `deadlock` (at least one litmus
    /// deadlocked), or `unsat`.
    pub fn word(&self) -> &'static str {
        if self.is_sat() {
            "sat"
        } else if self.deadlocks > 0 {
            "deadlock"
        } else {
            "unsat"
        }
    }
}

/// One policy's row: a verdict per model plus the derived classification.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The policy under test.
    pub policy: PolicyKind,
    /// Aggregated verdicts, indexed in [`ALL_MODELS`] order (OBE, LOBE,
    /// Fair).
    pub verdicts: [ModelVerdict; 3],
}

fn model_index(model: ProgressModel) -> usize {
    ALL_MODELS
        .iter()
        .position(|&m| m == model)
        .expect("every model is in ALL_MODELS")
}

impl PolicyRow {
    /// An empty row for `policy`.
    pub fn new(policy: PolicyKind) -> Self {
        PolicyRow {
            policy,
            verdicts: [ModelVerdict::default(); 3],
        }
    }

    /// The aggregate for `model`.
    pub fn verdict(&self, model: ProgressModel) -> &ModelVerdict {
        &self.verdicts[model_index(model)]
    }

    /// Mutable access for folding in cell outcomes.
    pub fn verdict_mut(&mut self, model: ProgressModel) -> &mut ModelVerdict {
        &mut self.verdicts[model_index(model)]
    }

    /// The strongest model whose entire prefix of the ladder is
    /// satisfied, or `None` when even OBE fails.
    pub fn classified(&self) -> Option<ProgressModel> {
        let mut strongest = None;
        for &model in &ALL_MODELS {
            if self.verdict(model).is_sat() {
                strongest = Some(model);
            } else {
                break;
            }
        }
        strongest
    }

    /// The classification as a matrix label (`"none"` when unclassified).
    pub fn classified_label(&self) -> &'static str {
        self.classified().map_or("none", |m| m.label())
    }
}

/// The full conformance matrix: one row per policy, in run order.
#[derive(Debug, Clone, Default)]
pub struct ConformanceMatrix {
    /// Rows in the campaign's policy order.
    pub rows: Vec<PolicyRow>,
}

impl ConformanceMatrix {
    /// An empty matrix with one row per policy, preserving order.
    pub fn new(policies: &[PolicyKind]) -> Self {
        ConformanceMatrix {
            rows: policies.iter().map(|&p| PolicyRow::new(p)).collect(),
        }
    }

    /// The row for `policy`.
    ///
    /// # Panics
    ///
    /// Panics when `policy` is not in the matrix — campaign enumeration
    /// and matrix construction share one policy list.
    pub fn row_mut(&mut self, policy: PolicyKind) -> &mut PolicyRow {
        self.rows
            .iter_mut()
            .find(|r| r.policy == policy)
            .expect("policy list mismatch between campaign and matrix")
    }

    /// Renders the matrix as stable CSV — the golden regression surface.
    ///
    /// Columns: `policy,claimed,obe,lobe,fair,classified`. Cell words
    /// only (no counts), so the golden stays comparable when the litmus
    /// count per model shifts between equally-passing runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("policy,claimed,obe,lobe,fair,classified\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                row.policy.label(),
                row.policy.progress_claim().label(),
                row.verdicts[0].word(),
                row.verdicts[1].word(),
                row.verdicts[2].word(),
                row.classified_label(),
            ));
        }
        out
    }

    /// Compares this matrix's CSV against a committed expected copy.
    ///
    /// Returns one human-readable line per difference; empty means the
    /// matrices agree. Trailing whitespace and trailing blank lines are
    /// ignored so a text editor's final newline cannot fail CI.
    pub fn diff_against(&self, expected_csv: &str) -> Vec<String> {
        let normalize = |text: &str| -> Vec<String> {
            let mut lines: Vec<String> = text.lines().map(|l| l.trim_end().to_owned()).collect();
            while lines.last().is_some_and(String::is_empty) {
                lines.pop();
            }
            lines
        };
        let got = normalize(&self.to_csv());
        let want = normalize(expected_csv);
        let mut diffs = Vec::new();
        for i in 0..got.len().max(want.len()) {
            match (got.get(i), want.get(i)) {
                (Some(g), Some(w)) if g == w => {}
                (Some(g), Some(w)) => {
                    diffs.push(format!("line {}: expected `{w}`, got `{g}`", i + 1));
                }
                (Some(g), None) => diffs.push(format!("line {}: unexpected `{g}`", i + 1)),
                (None, Some(w)) => diffs.push(format!("line {}: missing `{w}`", i + 1)),
                (None, None) => unreachable!(),
            }
        }
        diffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat() -> ModelVerdict {
        ModelVerdict {
            total: 3,
            sat: 3,
            deadlocks: 0,
        }
    }

    fn unsat(deadlocks: u32) -> ModelVerdict {
        ModelVerdict {
            total: 3,
            sat: 1,
            deadlocks,
        }
    }

    #[test]
    fn classification_walks_the_ladder() {
        let mut row = PolicyRow::new(PolicyKind::Awg);
        row.verdicts = [sat(), sat(), sat()];
        assert_eq!(row.classified(), Some(ProgressModel::Fair));
        row.verdicts = [sat(), sat(), unsat(0)];
        assert_eq!(row.classified(), Some(ProgressModel::LinearOccupancyBound));
        row.verdicts = [sat(), unsat(1), sat()];
        // A gap in the ladder stops the walk even when Fair passes.
        assert_eq!(row.classified(), Some(ProgressModel::OccupancyBound));
        row.verdicts = [unsat(2), sat(), sat()];
        assert_eq!(row.classified(), None);
        assert_eq!(row.classified_label(), "none");
    }

    #[test]
    fn empty_test_sets_never_classify() {
        let row = PolicyRow::new(PolicyKind::Awg);
        assert_eq!(row.classified(), None);
        assert_eq!(row.verdict(ProgressModel::OccupancyBound).word(), "unsat");
    }

    #[test]
    fn csv_is_stable_and_diff_detects_regressions() {
        let mut m = ConformanceMatrix::new(&[PolicyKind::Baseline, PolicyKind::Awg]);
        m.row_mut(PolicyKind::Baseline).verdicts = [unsat(3), unsat(3), unsat(3)];
        m.row_mut(PolicyKind::Awg).verdicts = [sat(), sat(), sat()];
        let csv = m.to_csv();
        assert_eq!(m.to_csv(), csv, "rendering is deterministic");
        assert!(csv.starts_with("policy,claimed,obe,lobe,fair,classified\n"));
        assert!(csv.contains("Baseline,OBE,deadlock,deadlock,deadlock,none\n"));
        assert!(csv.contains("AWG,Fair,sat,sat,sat,Fair\n"));

        // Self-diff is clean, including with a trailing-newline variant.
        assert!(m.diff_against(&csv).is_empty());
        assert!(m.diff_against(&format!("{csv}\n")).is_empty());

        // A flipped cell is one precise diff line.
        let broken = csv.replace("AWG,Fair,sat,sat,sat,Fair", "AWG,Fair,sat,sat,unsat,LOBE");
        let diffs = m.diff_against(&broken);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("AWG"), "{diffs:?}");

        // A missing row is reported too.
        let truncated: String = csv.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(!m.diff_against(&truncated).is_empty());
    }
}
