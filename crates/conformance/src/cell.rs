//! Running one conformance cell: a (policy, model, litmus) triple under
//! the model's adversary, with the invariant oracle and a schedule-filtered
//! trace on.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{CancelCause, FaultPlan, Gpu, Kernel, TraceFilter, Watchdog, WgResources};
use awg_sim::Cycle;
use awg_workloads::litmus::{lab_gpu_config, Litmus};

use crate::model::{check_obligations, ProgressModel};

/// The verdict-relevant observations from one cell run.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The kernel ran to completion.
    pub completed: bool,
    /// The quiescence detector declared deadlock.
    pub deadlocked: bool,
    /// A watchdog cancelled the run (retryable, not a verdict).
    pub cancelled: Option<(Cycle, CancelCause)>,
    /// Cycles simulated (to completion or abort).
    pub cycles: Cycle,
    /// Context switches out (the rescheduling the models obligate).
    pub switches_out: u64,
    /// Invariant-oracle violations observed.
    pub oracle_violations: u64,
    /// Post-condition cells whose final value was wrong.
    pub post_failures: u64,
    /// Whether the model's trace obligation held.
    pub obligation_ok: bool,
    /// Obligation violations and starvation diagnoses, human-readable.
    pub notes: Vec<String>,
}

impl CellOutcome {
    /// Whether this cell is satisfied: completed, post-state intact, zero
    /// oracle violations, and the schedule obligation held.
    pub fn sat(&self) -> bool {
        self.completed
            && self.oracle_violations == 0
            && self.post_failures == 0
            && self.obligation_ok
    }

    /// One-word verdict for matrices and reports.
    pub fn verdict(&self) -> &'static str {
        if self.sat() {
            "sat"
        } else if self.deadlocked {
            "deadlock"
        } else {
            "unsat"
        }
    }
}

/// Runs one cell: `litmus` (already emitted in `policy`'s sync style)
/// under `policy` on the 1-CU lab machine, with `model`'s adversary
/// installed, the invariant oracle armed, and the schedule trace recorded
/// for the obligation check. `num_wgs` must match the litmus' build.
pub fn run_cell(
    policy: PolicyKind,
    model: ProgressModel,
    litmus: &Litmus,
    num_wgs: u64,
    plan: FaultPlan,
    watchdog: Option<Watchdog>,
) -> CellOutcome {
    let policy_box = build_policy(policy);
    let kernel = Kernel::new(litmus.program.clone(), num_wgs, WgResources::default());
    let mut gpu = Gpu::new(lab_gpu_config(), kernel, policy_box);
    gpu.enable_invariant_oracle();
    gpu.enable_trace();
    gpu.set_trace_filter(TraceFilter::Schedule);
    gpu.install_fault_plan(plan);
    if let Some(w) = watchdog {
        gpu.set_watchdog(w);
    }
    let outcome = gpu.run();

    let completed = outcome.is_completed();
    let summary = outcome.summary().clone();
    let mut notes = Vec::new();
    let mut post_failures = 0u64;
    if completed {
        for &(addr, expected) in &litmus.finals {
            let got = gpu.backing().load(addr);
            if got != expected {
                post_failures += 1;
                notes.push(format!(
                    "post-state {addr:#x}: expected {expected}, got {got}"
                ));
            }
        }
    }
    let obligation = if completed {
        check_obligations(model, &gpu.trace_records(), num_wgs)
    } else {
        // An unfinished run already fails the cell; keep the starvation
        // diagnosis for the report.
        let mut r = check_obligations(ProgressModel::Fair, &gpu.trace_records(), num_wgs);
        if let Some(hang) = outcome.hang_report() {
            r.violations.push(format!(
                "{} unfinished WG(s) at abort",
                hang.unfinished.len()
            ));
        }
        r
    };
    if !obligation.starved.is_empty() {
        notes.push(format!("starved WGs: {:?}", obligation.starved));
    }
    notes.extend(obligation.violations.iter().cloned());

    CellOutcome {
        completed,
        deadlocked: outcome.is_deadlocked(),
        cancelled: outcome.cancelled(),
        cycles: summary.cycles,
        switches_out: summary.switches_out,
        oracle_violations: gpu.violations().len() as u64,
        post_failures,
        obligation_ok: !completed || obligation.ok(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::adversary_plan;
    use awg_gpu::SyncStyle;
    use awg_workloads::litmus;

    fn cell(policy: PolicyKind, model: ProgressModel, build: litmus::LitmusBuilder) -> CellOutcome {
        let style = build_policy(policy).style();
        let l = build(style);
        run_cell(
            policy,
            model,
            &l,
            litmus::NUM_WGS,
            adversary_plan(model, 0xc0ffee),
            None,
        )
    }

    #[test]
    fn awg_satisfies_the_fair_barrier_cell() {
        let out = cell(
            PolicyKind::Awg,
            ProgressModel::Fair,
            litmus::centralized_barrier,
        );
        assert!(out.sat(), "{out:?}");
        assert!(out.switches_out > 0);
    }

    #[test]
    fn baseline_deadlocks_under_the_obe_adversary() {
        // Even an independent-sync kernel strands its preempted WGs when
        // occupancy is revoked and the policy cannot reschedule them.
        let spec = crate::generator::LitmusSpec {
            seed: 1,
            pattern: crate::generator::LitmusPattern::CounterRace,
            num_wgs: 12,
            compute: 100,
            payload: 5,
            adds: 2,
        };
        let l = spec.build(SyncStyle::Busy);
        let out = run_cell(
            PolicyKind::Baseline,
            ProgressModel::OccupancyBound,
            &l,
            spec.num_wgs,
            adversary_plan(ProgressModel::OccupancyBound, 0xc0ffee),
            None,
        );
        assert!(!out.sat(), "{out:?}");
        assert!(out.deadlocked, "{out:?}");
        assert_eq!(out.oracle_violations, 0);
    }
}
