//! The seeded property-based litmus generator.
//!
//! A [`LitmusSpec`] is a small, serializable description of one generated
//! litmus kernel: a synchronization *pattern* plus the knobs that vary
//! between instances (WG count, compute grain, payloads). Specs are
//! derived deterministically from a single `u64` seed, round-trip through
//! JSON, and build into an [`awg_workloads::litmus::Litmus`] — a program
//! in the target policy's sync style plus machine-checkable final-memory
//! post-conditions — so one seed reproduces one cell exactly, forever.
//!
//! Each pattern carries a *demand*: the weakest progress model under which
//! the kernel is guaranteed to terminate on the oversubscribed lab
//! machine. Ascending-order dependencies (WG `i` waits only on `j < i`)
//! demand LOBE; dependencies on WGs the full machine cannot co-schedule —
//! descending chains, last-WG producers, all-to-all barriers — demand
//! fairness; independent synchronization demands only occupancy-bound
//! execution.

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Reg, Special};
use awg_mem::AddressSpace;
use awg_sim::json::{self, Value};
use awg_sim::SplitMix64;
use awg_workloads::litmus::Litmus;
use awg_workloads::sync_emit;

use crate::model::ProgressModel;

/// The synchronization patterns the generator composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LitmusPattern {
    /// Every WG acquires one shared test-and-set mutex, bumps a counter in
    /// the critical section, releases. No cross-WG ordering.
    IndependentMutex,
    /// Every WG issues `adds` atomic increments with compute in between.
    /// No waiting at all.
    CounterRace,
    /// Token mutex chain in ascending WG-id order: WG `i` waits for
    /// `token == i`.
    AscendingHandoff,
    /// Token mutex chain in descending WG-id order: the chain starts at
    /// the one WG the full machine cannot dispatch.
    DescendingHandoff,
    /// WG 0 produces a payload behind a flag; every other WG consumes.
    ProducerFanoutFirst,
    /// The *last* WG produces; on a full machine it is never dispatched
    /// until a consumer yields its slot.
    ProducerFanoutLast,
    /// Single-episode oversubscribed centralized barrier: arrive at one
    /// counter, wait for all arrivals.
    CentralizedBarrier,
    /// Per-WG cell pipeline in ascending order: WG `i` waits for cell
    /// `i-1`, then publishes cell `i`.
    PipelineForward,
    /// Per-WG cell pipeline in descending order: WG `i` waits for cell
    /// `i+1`; the last WG publishes first.
    PipelineReverse,
}

/// All patterns, in the generator's selection order.
pub const ALL_PATTERNS: [LitmusPattern; 9] = [
    LitmusPattern::IndependentMutex,
    LitmusPattern::CounterRace,
    LitmusPattern::AscendingHandoff,
    LitmusPattern::DescendingHandoff,
    LitmusPattern::ProducerFanoutFirst,
    LitmusPattern::ProducerFanoutLast,
    LitmusPattern::CentralizedBarrier,
    LitmusPattern::PipelineForward,
    LitmusPattern::PipelineReverse,
];

impl LitmusPattern {
    /// Short name used in spec names, job keys, and JSON.
    pub fn slug(&self) -> &'static str {
        match self {
            LitmusPattern::IndependentMutex => "imutex",
            LitmusPattern::CounterRace => "race",
            LitmusPattern::AscendingHandoff => "handoff_asc",
            LitmusPattern::DescendingHandoff => "handoff_desc",
            LitmusPattern::ProducerFanoutFirst => "fanout_first",
            LitmusPattern::ProducerFanoutLast => "fanout_last",
            LitmusPattern::CentralizedBarrier => "cbarrier",
            LitmusPattern::PipelineForward => "pipe_fwd",
            LitmusPattern::PipelineReverse => "pipe_rev",
        }
    }

    /// Parses a [`LitmusPattern::slug`].
    pub fn from_slug(s: &str) -> Option<Self> {
        ALL_PATTERNS.into_iter().find(|p| p.slug() == s)
    }

    /// The weakest progress model under which this pattern is guaranteed
    /// to terminate on the oversubscribed lab machine.
    pub fn demand(&self) -> ProgressModel {
        match self {
            LitmusPattern::IndependentMutex | LitmusPattern::CounterRace => {
                ProgressModel::OccupancyBound
            }
            LitmusPattern::AscendingHandoff
            | LitmusPattern::ProducerFanoutFirst
            | LitmusPattern::PipelineForward => ProgressModel::LinearOccupancyBound,
            LitmusPattern::DescendingHandoff
            | LitmusPattern::ProducerFanoutLast
            | LitmusPattern::CentralizedBarrier
            | LitmusPattern::PipelineReverse => ProgressModel::Fair,
        }
    }
}

/// A generated litmus: the seed it came from plus every derived knob, so
/// the spec is self-describing and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LitmusSpec {
    /// The generating seed.
    pub seed: u64,
    /// Which synchronization pattern.
    pub pattern: LitmusPattern,
    /// WGs launched; 11–14, always above the lab machine's 10-slot
    /// capacity so the litmus stays oversubscribed.
    pub num_wgs: u64,
    /// Compute grain in cycles at each kernel's work site.
    pub compute: u32,
    /// Payload value for producer/consumer patterns.
    pub payload: i64,
    /// Atomic increments per WG for [`LitmusPattern::CounterRace`].
    pub adds: u32,
}

impl LitmusSpec {
    /// Derives the spec for `seed`. Same seed ⇒ identical spec, on every
    /// platform.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let pattern = ALL_PATTERNS[(rng.next_u64() % ALL_PATTERNS.len() as u64) as usize];
        let num_wgs = 11 + rng.next_u64() % 4;
        let compute = (50 + rng.next_u64() % 200) as u32;
        let payload = (3 + rng.next_u64() % 7) as i64;
        let adds = (1 + rng.next_u64() % 4) as u32;
        LitmusSpec {
            seed,
            pattern,
            num_wgs,
            compute,
            payload,
            adds,
        }
    }

    /// The spec's display / job-key name, unique per distinct spec.
    pub fn name(&self) -> String {
        format!(
            "g{:016x}_{}_w{}",
            self.seed,
            self.pattern.slug(),
            self.num_wgs
        )
    }

    /// The weakest model guaranteeing termination (see
    /// [`LitmusPattern::demand`]).
    pub fn demand(&self) -> ProgressModel {
        self.pattern.demand()
    }

    /// Serializes the spec (the format [`LitmusSpec::from_json`] parses).
    /// The seed is a hex string because JSON numbers are f64s with 53
    /// mantissa bits.
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            ("seed".into(), Value::Str(format!("{:#x}", self.seed))),
            ("pattern".into(), Value::Str(self.pattern.slug().into())),
            ("num_wgs".into(), Value::Num(self.num_wgs as f64)),
            ("compute".into(), Value::Num(self.compute as f64)),
            ("payload".into(), Value::Num(self.payload as f64)),
            ("adds".into(), Value::Num(self.adds as f64)),
        ])
        .to_json()
    }

    /// Parses [`LitmusSpec::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let seed_str = v
            .get("seed")
            .and_then(Value::as_str)
            .ok_or("spec missing seed")?;
        let seed = u64::from_str_radix(seed_str.trim_start_matches("0x"), 16)
            .map_err(|e| format!("bad seed {seed_str:?}: {e}"))?;
        let pattern_str = v
            .get("pattern")
            .and_then(Value::as_str)
            .ok_or("spec missing pattern")?;
        let pattern = LitmusPattern::from_slug(pattern_str)
            .ok_or_else(|| format!("unknown pattern {pattern_str:?}"))?;
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("spec missing {key}"))
        };
        Ok(LitmusSpec {
            seed,
            pattern,
            num_wgs: num("num_wgs")? as u64,
            compute: num("compute")? as u32,
            payload: num("payload")? as i64,
            adds: num("adds")? as u32,
        })
    }

    /// Builds the litmus kernel in `style`, with post-conditions.
    pub fn build(&self, style: SyncStyle) -> Litmus {
        match self.pattern {
            LitmusPattern::IndependentMutex => self.build_independent_mutex(style),
            LitmusPattern::CounterRace => self.build_counter_race(style),
            LitmusPattern::AscendingHandoff => self.build_handoff(style, false),
            LitmusPattern::DescendingHandoff => self.build_handoff(style, true),
            LitmusPattern::ProducerFanoutFirst => self.build_fanout(style, false),
            LitmusPattern::ProducerFanoutLast => self.build_fanout(style, true),
            LitmusPattern::CentralizedBarrier => self.build_centralized_barrier(style),
            LitmusPattern::PipelineForward => self.build_pipeline(style, false),
            LitmusPattern::PipelineReverse => self.build_pipeline(style, true),
        }
    }

    fn builder(&self) -> ProgramBuilder {
        ProgramBuilder::new(&self.name())
    }

    fn build_independent_mutex(&self, style: SyncStyle) -> Litmus {
        let mut space = AddressSpace::new();
        let lock = space.alloc_sync_var("lock");
        let counter = space.alloc_sync_var("counter");
        let mut b = self.builder();
        sync_emit::acquire_test_and_set(&mut b, style, Mem::direct(lock), Reg::R2, None);
        sync_emit::critical_section(&mut b, Mem::direct(counter), 1, self.compute, Reg::R3);
        sync_emit::release_test_and_set(&mut b, Mem::direct(lock), Reg::R2);
        b.halt();
        Litmus {
            program: b.build().expect("verifies"),
            finals: vec![(counter, self.num_wgs as i64), (lock, 0)],
        }
    }

    fn build_counter_race(&self, style: SyncStyle) -> Litmus {
        let _ = style; // no sync point: the race is style-invariant
        let mut space = AddressSpace::new();
        let counter = space.alloc_sync_var("counter");
        let mut b = self.builder();
        for _ in 0..self.adds {
            b.compute(self.compute);
            b.atom_add(Reg::R0, counter, 1i64);
        }
        b.halt();
        Litmus {
            program: b.build().expect("verifies"),
            finals: vec![(counter, (self.num_wgs * self.adds as u64) as i64)],
        }
    }

    fn build_handoff(&self, style: SyncStyle, descending: bool) -> Litmus {
        let mut space = AddressSpace::new();
        let token = space.alloc_sync_var("token");
        let counter = space.alloc_sync_var("counter");
        let mut b = self.builder();
        b.special(Reg::R1, Special::WgId);
        if descending {
            // My turn is token == (num_wgs-1) - wg_id.
            b.li(Reg::R2, self.num_wgs as i64 - 1);
            b.alu(AluOp::Sub, Reg::R2, Reg::R2, Reg::R1);
        } else {
            // My turn is token == wg_id.
            b.alu(AluOp::Add, Reg::R2, Reg::R1, 0i64);
        }
        sync_emit::wait_until_equals(&mut b, style, Mem::direct(token), Reg::R2, Reg::R3, None);
        sync_emit::critical_section(&mut b, Mem::direct(counter), 1, self.compute, Reg::R4);
        b.atom_add(Reg::R0, token, 1i64);
        b.halt();
        Litmus {
            program: b.build().expect("verifies"),
            finals: vec![(counter, self.num_wgs as i64), (token, self.num_wgs as i64)],
        }
    }

    fn build_fanout(&self, style: SyncStyle, last_produces: bool) -> Litmus {
        let mut space = AddressSpace::new();
        let flag = space.alloc_sync_var("flag");
        let payload = space.alloc_sync_var("payload");
        let acks = space.alloc_sync_var("acks");
        let producer_id = if last_produces {
            self.num_wgs as i64 - 1
        } else {
            0
        };
        let mut b = self.builder();
        b.special(Reg::R1, Special::WgId);
        let produce = b.new_label();
        let done = b.new_label();
        b.br(Cond::Eq, Reg::R1, Operand::Imm(producer_id), produce);
        // --- consumer ---
        sync_emit::wait_until_equals(&mut b, style, Mem::direct(flag), 1i64, Reg::R2, None);
        b.ld(Reg::R3, payload);
        b.atom_add(Reg::R0, acks, Reg::R3);
        b.jmp(done);
        // --- producer ---
        b.bind(produce);
        b.compute(self.compute * 10);
        b.st(payload, self.payload);
        b.atom_exch(Reg::R0, flag, 1i64);
        b.bind(done);
        b.halt();
        Litmus {
            program: b.build().expect("verifies"),
            finals: vec![(flag, 1), (acks, self.payload * (self.num_wgs as i64 - 1))],
        }
    }

    fn build_centralized_barrier(&self, style: SyncStyle) -> Litmus {
        let mut space = AddressSpace::new();
        let count = space.alloc_sync_var("count");
        let after = space.alloc_sync_var("after");
        let mut b = self.builder();
        b.compute(self.compute);
        // Single episode only: the counter is monotonic and the wait is an
        // equality, so multiplexing episodes would need parity
        // double-buffering (see awg_workloads::barrier::tree_barrier).
        sync_emit::counter_arrive_and_wait(
            &mut b,
            style,
            Mem::direct(count),
            self.num_wgs as i64,
            Reg::R0,
            Reg::R2,
            None,
        );
        b.atom_add(Reg::R0, after, 1i64);
        b.halt();
        Litmus {
            program: b.build().expect("verifies"),
            finals: vec![(count, self.num_wgs as i64), (after, self.num_wgs as i64)],
        }
    }

    fn build_pipeline(&self, style: SyncStyle, reverse: bool) -> Litmus {
        let mut space = AddressSpace::new();
        let cells = space.alloc_sync_array("cells", self.num_wgs, true);
        let mut b = self.builder();
        b.special(Reg::R1, Special::WgId);
        b.compute(self.compute);
        let publish = b.new_label();
        let head_id = if reverse { self.num_wgs as i64 - 1 } else { 0 };
        b.br(Cond::Eq, Reg::R1, Operand::Imm(head_id), publish);
        // Wait for the upstream neighbor's cell.
        if reverse {
            b.alu(AluOp::Add, Reg::R4, Reg::R1, 1i64);
        } else {
            b.alu(AluOp::Sub, Reg::R4, Reg::R1, 1i64);
        }
        sync_emit::wait_until_equals(
            &mut b,
            style,
            Mem::indexed(cells.base(), Reg::R4, cells.stride_bytes()),
            1i64,
            Reg::R5,
            None,
        );
        b.bind(publish);
        b.atom_exch(
            Reg::R0,
            Mem::indexed(cells.base(), Reg::R1, cells.stride_bytes()),
            1i64,
        );
        b.halt();
        let finals = (0..self.num_wgs)
            .map(|i| (cells.base() + i * cells.stride_bytes(), 1))
            .collect();
        Litmus {
            program: b.build().expect("verifies"),
            finals,
        }
    }
}

/// Generates `count` specs from a master seed: spec `i` uses the `i`-th
/// output of a [`SplitMix64`] stream, so any prefix of a longer batch is
/// identical to a shorter one.
pub fn generate_batch(master_seed: u64, count: usize) -> Vec<LitmusSpec> {
    let mut stream = SplitMix64::new(master_seed);
    (0..count)
        .map(|_| LitmusSpec::generate(stream.next_u64()))
        .collect()
}

/// One fixed spec per pattern, with mid-range knobs.
///
/// The conformance campaign always runs the anchors in addition to the
/// random batch, so every model's test set is non-empty at any `--count`
/// (a small random batch can miss entire patterns) and the committed
/// matrix never rests on random draws alone.
pub fn anchor_specs() -> Vec<LitmusSpec> {
    ALL_PATTERNS
        .iter()
        .enumerate()
        .map(|(i, &pattern)| LitmusSpec {
            seed: 0xa0c4_0000 + i as u64,
            pattern,
            num_wgs: 12,
            compute: 120,
            payload: 7,
            adds: 2,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    #[test]
    fn every_pattern_generates_and_builds() {
        let mut seen = std::collections::HashSet::new();
        let mut seed = 0u64;
        while seen.len() < ALL_PATTERNS.len() {
            let spec = LitmusSpec::generate(seed);
            let litmus = spec.build(SyncStyle::WaitingAtomic);
            assert!(litmus.program.len() > 2, "{}", spec.name());
            assert!(!litmus.finals.is_empty(), "{}", spec.name());
            seen.insert(spec.pattern);
            seed += 1;
            assert!(seed < 10_000, "pattern coverage stalled: {seen:?}");
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        for seed in 0..32u64 {
            let spec = LitmusSpec::generate(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let back = LitmusSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn post_conditions_hold_on_the_fair_reference_interpreter() {
        // The functional interpreter schedules WGs round-robin (fair), so
        // every generated program must terminate on it with its declared
        // final memory — the internal-consistency check for generated
        // post-conditions.
        for seed in 0..24 {
            let spec = LitmusSpec::generate(seed);
            for style in [SyncStyle::Busy, SyncStyle::WaitingAtomic] {
                let litmus = spec.build(style);
                let mut m = Machine::new(litmus.program.clone(), spec.num_wgs, spec.num_wgs);
                m.run(50_000_000)
                    .unwrap_or_else(|e| panic!("{} {style:?}: {e}", spec.name()));
                for &(addr, expected) in &litmus.finals {
                    assert_eq!(
                        m.mem().load(addr),
                        expected,
                        "{} {style:?} @ {addr:#x}",
                        spec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn batch_prefixes_are_stable() {
        let long = generate_batch(99, 16);
        let short = generate_batch(99, 4);
        assert_eq!(&long[..4], &short[..]);
    }

    #[test]
    fn demand_covers_all_three_models() {
        use crate::model::ALL_MODELS;
        let batch = generate_batch(1, 64);
        for model in ALL_MODELS {
            assert!(
                batch.iter().any(|s| s.demand() == model),
                "no generated litmus demands {model:?}"
            );
        }
    }

    #[test]
    fn anchors_cover_every_pattern_with_unique_names() {
        let anchors = anchor_specs();
        assert_eq!(anchors.len(), ALL_PATTERNS.len());
        let patterns: std::collections::HashSet<_> = anchors.iter().map(|s| s.pattern).collect();
        assert_eq!(patterns.len(), ALL_PATTERNS.len());
        let names: std::collections::HashSet<_> = anchors.iter().map(LitmusSpec::name).collect();
        assert_eq!(names.len(), anchors.len());
        for spec in &anchors {
            let litmus = spec.build(SyncStyle::WaitingAtomic);
            assert!(!litmus.finals.is_empty(), "{}", spec.name());
        }
    }
}
