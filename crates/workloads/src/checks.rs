//! Machine-checkable workload post-conditions.
//!
//! Every benchmark attaches a list of [`Check`]s to its built program; after
//! a simulation completes, the checks are evaluated against the functional
//! memory. A mutex benchmark whose lock failed to provide mutual exclusion,
//! or a barrier that let a WG run ahead, fails its checks — so performance
//! numbers are only reported for *correct* executions.

use awg_mem::{Addr, Backing};

/// A post-condition over the final memory state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// The word at `addr` must equal `expect`.
    WordEquals {
        /// Checked address.
        addr: Addr,
        /// Required value.
        expect: i64,
        /// What this word means (for failure messages).
        label: &'static str,
    },
    /// The sum of `count` words starting at `base` with byte `stride` must
    /// equal `expect`.
    SumEquals {
        /// First word.
        base: Addr,
        /// Number of words.
        count: u64,
        /// Byte stride between words.
        stride: u64,
        /// Required sum.
        expect: i64,
        /// What this array means.
        label: &'static str,
    },
    /// An in-kernel error flag that must still be zero.
    ErrorFlagClear {
        /// Flag address.
        addr: Addr,
        /// What a non-zero flag means.
        label: &'static str,
    },
}

impl Check {
    /// Evaluates the check against `mem`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated condition.
    pub fn evaluate(&self, mem: &Backing) -> Result<(), String> {
        match *self {
            Check::WordEquals {
                addr,
                expect,
                label,
            } => {
                let got = mem.load(addr);
                if got == expect {
                    Ok(())
                } else {
                    Err(format!(
                        "{label}: word at {addr:#x} is {got}, expected {expect}"
                    ))
                }
            }
            Check::SumEquals {
                base,
                count,
                stride,
                expect,
                label,
            } => {
                let sum: i64 = (0..count)
                    .map(|i| mem.load(base + i * stride))
                    .fold(0i64, |a, v| a.wrapping_add(v));
                if sum == expect {
                    Ok(())
                } else {
                    Err(format!(
                        "{label}: sum over {count} words at {base:#x} is {sum}, expected {expect}"
                    ))
                }
            }
            Check::ErrorFlagClear { addr, label } => {
                let got = mem.load(addr);
                if got == 0 {
                    Ok(())
                } else {
                    Err(format!("{label}: error flag at {addr:#x} set to {got}"))
                }
            }
        }
    }
}

/// Evaluates all checks, collecting every failure.
///
/// # Errors
///
/// Returns the concatenated failure descriptions if any check fails.
pub fn validate(checks: &[Check], mem: &Backing) -> Result<(), String> {
    let failures: Vec<String> = checks
        .iter()
        .filter_map(|c| c.evaluate(mem).err())
        .collect();
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_equals() {
        let mut mem = Backing::new();
        mem.store(64, 5);
        assert!(Check::WordEquals {
            addr: 64,
            expect: 5,
            label: "counter"
        }
        .evaluate(&mem)
        .is_ok());
        let err = Check::WordEquals {
            addr: 64,
            expect: 6,
            label: "counter",
        }
        .evaluate(&mem)
        .unwrap_err();
        assert!(err.contains("counter"), "{err}");
        assert!(err.contains("expected 6"), "{err}");
    }

    #[test]
    fn sum_equals_with_stride() {
        let mut mem = Backing::new();
        for i in 0..4u64 {
            mem.store(1024 + i * 64, 10);
        }
        assert!(Check::SumEquals {
            base: 1024,
            count: 4,
            stride: 64,
            expect: 40,
            label: "balances"
        }
        .evaluate(&mem)
        .is_ok());
    }

    #[test]
    fn error_flag() {
        let mut mem = Backing::new();
        assert!(Check::ErrorFlagClear {
            addr: 64,
            label: "barrier order"
        }
        .evaluate(&mem)
        .is_ok());
        mem.store(64, 1);
        assert!(Check::ErrorFlagClear {
            addr: 64,
            label: "barrier order"
        }
        .evaluate(&mem)
        .is_err());
    }

    #[test]
    fn validate_collects_all_failures() {
        let mem = Backing::new();
        let checks = vec![
            Check::WordEquals {
                addr: 0,
                expect: 1,
                label: "a",
            },
            Check::WordEquals {
                addr: 8,
                expect: 2,
                label: "b",
            },
        ];
        let err = validate(&checks, &mem).unwrap_err();
        assert!(err.contains("a:") && err.contains("b:"), "{err}");
        assert!(validate(&[], &mem).is_ok());
    }
}
