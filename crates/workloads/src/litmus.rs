//! Sorensen-style IFP litmus kernels (cf. "Portable inter-workgroup
//! barrier synchronisation", OOPSLA 2016), shared by the harness litmus
//! test, the conformance lab, and its generator.
//!
//! Each litmus kernel is written directly against the ISA and launched on
//! a deliberately tiny machine — one CU, so only 10 of the 12 WGs can be
//! resident — making forward progress for *non-resident* WGs the only way
//! to terminate. The busy-waiting Baseline must deadlock (occupancy-bound
//! scheduling gives no IFP guarantee); every design with WG-granularity
//! rescheduling — Timeout, the non-resident monitors, AWG — must complete
//! with the invariant oracle enabled and the post-state intact.

use awg_gpu::{GpuConfig, SyncStyle};
use awg_isa::{AluOp, Cond, Mem, Operand, Program, ProgramBuilder, Reg, Special};
use awg_mem::{Addr, AddressSpace};

use crate::sync_emit;

/// Two more WGs than the 1-CU lab machine can hold (40 wavefront slots / 4
/// wavefronts per WG = 10 resident).
pub const NUM_WGS: u64 = 12;

/// The value the producer publishes behind the flag.
pub const PAYLOAD: i64 = 7;

/// The conformance-lab machine: the paper's baseline GPU cut down to one
/// CU, with a short quiescence window so deadlocks are detected fast.
pub fn lab_gpu_config() -> GpuConfig {
    let mut c = GpuConfig::isca2020_baseline();
    c.num_cus = 1;
    c.quiescence_cycles = 600_000;
    c
}

/// A litmus kernel plus its expected final memory (address, value) pairs.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Kernel program, emitted in one policy's sync style.
    pub program: Program,
    /// Post-conditions: `(address, expected final value)` pairs.
    pub finals: Vec<(Addr, i64)>,
}

/// Producer/consumer spin: the *last* WG is the producer, so on a full
/// machine it is never dispatched until some consumer is context-switched
/// out. Consumers spin on the flag, then read the payload it guards.
pub fn producer_consumer(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let flag = space.alloc_sync_var("flag");
    let payload = space.alloc_sync_var("payload");
    let acks = space.alloc_sync_var("acks");
    let mut b = ProgramBuilder::new("litmus_pc");
    b.special(Reg::R1, Special::WgId);
    let produce = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(NUM_WGS as i64 - 1), produce);
    // --- consumer ---
    sync_emit::wait_until_equals(&mut b, style, Mem::direct(flag), 1i64, Reg::R2, None);
    b.ld(Reg::R3, payload);
    b.atom_add(Reg::R0, acks, Reg::R3);
    b.jmp(done);
    // --- producer ---
    b.bind(produce);
    b.compute(5_000);
    b.st(payload, PAYLOAD);
    b.atom_exch(Reg::R0, flag, 1i64);
    b.bind(done);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(flag, 1), (acks, PAYLOAD * (NUM_WGS as i64 - 1))],
    }
}

/// Cross-WG mutex handoff in *descending* WG-id order: WG `i`'s turn comes
/// when `token == (NUM_WGS-1) - i`, so the chain starts at the one WG the
/// full machine cannot dispatch.
pub fn mutex_handoff(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let token = space.alloc_sync_var("token");
    let counter = space.alloc_sync_var("counter");
    let mut b = ProgramBuilder::new("litmus_handoff");
    b.special(Reg::R1, Special::WgId);
    b.li(Reg::R2, NUM_WGS as i64 - 1);
    b.alu(AluOp::Sub, Reg::R2, Reg::R2, Reg::R1);
    sync_emit::wait_until_equals(&mut b, style, Mem::direct(token), Reg::R2, Reg::R3, None);
    // Critical section: a non-atomic read-modify-write only mutual
    // exclusion keeps consistent.
    sync_emit::critical_section(&mut b, Mem::direct(counter), 1, 50, Reg::R4);
    b.atom_add(Reg::R0, token, 1i64);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(counter, NUM_WGS as i64), (token, NUM_WGS as i64)],
    }
}

/// Oversubscribed centralized barrier: every WG arrives at one counter and
/// waits for all `NUM_WGS` arrivals — two of which can only happen after
/// resident waiters yield their slots.
pub fn centralized_barrier(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let count = space.alloc_sync_var("count");
    let after = space.alloc_sync_var("after");
    let mut b = ProgramBuilder::new("litmus_barrier");
    b.compute(100);
    sync_emit::counter_arrive_and_wait(
        &mut b,
        style,
        Mem::direct(count),
        NUM_WGS as i64,
        Reg::R0,
        Reg::R2,
        None,
    );
    b.atom_add(Reg::R0, after, 1i64);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(count, NUM_WGS as i64), (after, NUM_WGS as i64)],
    }
}

/// A named litmus kernel builder, parametric in the policy's sync style.
pub type LitmusBuilder = fn(SyncStyle) -> Litmus;

/// The three hand-written litmus kernels, by name.
pub fn all() -> [(&'static str, LitmusBuilder); 3] {
    [
        ("producer_consumer", producer_consumer),
        ("mutex_handoff", mutex_handoff),
        ("centralized_barrier", centralized_barrier),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_litmuses_build_in_every_style() {
        for (name, build) in all() {
            for style in [
                SyncStyle::Busy,
                SyncStyle::Backoff,
                SyncStyle::WaitInst,
                SyncStyle::WaitingAtomic,
            ] {
                let litmus = build(style);
                assert!(litmus.program.len() > 3, "{name} under {style:?}");
                assert!(!litmus.finals.is_empty(), "{name} under {style:?}");
            }
        }
    }

    #[test]
    fn lab_machine_is_oversubscribed() {
        let c = lab_gpu_config();
        assert_eq!(c.num_cus, 1);
        let resident = (c.simds_per_cu * c.wavefronts_per_simd) as u64 / 4;
        assert!(
            resident < NUM_WGS,
            "lab machine must not hold all {NUM_WGS} WGs (capacity {resident})"
        );
    }
}
