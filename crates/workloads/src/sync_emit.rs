//! Style-dependent emission of synchronization points.
//!
//! The paper's architectures differ in the *instructions* a kernel uses
//! where it waits (Fig 6/Fig 10): plain busy-wait atomics, `wait`
//! instructions after a failed poll, or waiting atomics carrying the
//! expected value. These helpers emit the right loop shape for a given
//! [`SyncStyle`], optionally composed with HeteroSync's software
//! exponential backoff (the `BO` benchmark variants).

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Reg};
use awg_mem::AtomicOp;

/// Software-backoff parameters (the `BO` benchmark variants double a sleep
/// interval after every failed attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Scratch register holding the current interval.
    pub reg: Reg,
    /// Initial interval in cycles.
    pub base: u32,
    /// Maximum interval in cycles (Fig 7's `Sleep-Xk` parameter).
    pub max: u32,
}

fn emit_backoff_step(b: &mut ProgramBuilder, bk: &Backoff) {
    b.sleep(bk.reg);
    b.alu(AluOp::Mul, bk.reg, bk.reg, 2i64);
    b.alu(AluOp::Min, bk.reg, bk.reg, bk.max as i64);
}

/// Emits code that blocks until `mem == expected`.
///
/// `result` ends up holding the observed (matching) value. `expected` may be
/// a register (the centralized ticket lock waits on its own ticket number).
pub fn wait_until_equals(
    b: &mut ProgramBuilder,
    style: SyncStyle,
    mem: Mem,
    expected: impl Into<Operand>,
    result: Reg,
    backoff: Option<Backoff>,
) {
    let expected = expected.into();
    if let Some(bk) = &backoff {
        b.li(bk.reg, bk.base as i64);
    }
    let retry = b.new_label();
    let done = b.new_label();
    b.bind(retry);
    match style {
        SyncStyle::Busy | SyncStyle::Backoff => {
            b.atom_load(result, mem);
            b.br(Cond::Eq, result, expected, done);
        }
        SyncStyle::WaitInst => {
            b.atom_load(result, mem);
            b.br(Cond::Eq, result, expected, done);
            // Poll failed: arm the monitor (window of vulnerability lives
            // between the load above and this arming — Fig 10).
            b.wait(mem, expected);
        }
        SyncStyle::WaitingAtomic => {
            // The paper's compare-and-wait instruction.
            b.raw(awg_isa::Inst::Atom {
                op: AtomicOp::Load,
                dst: result,
                mem,
                operand: Operand::Imm(0),
                expected: Some(expected),
            });
            b.br(Cond::Eq, result, expected, done);
        }
    }
    if let Some(bk) = &backoff {
        emit_backoff_step(b, bk);
    }
    b.jmp(retry);
    b.bind(done);
}

/// Emits a flat arrive-and-wait on one monotonic counter: atomically add 1,
/// then block until the counter reads `target`.
///
/// This is the oversubscribed centralized barrier both the litmus suite and
/// the conformance generator use. It is safe for exactly **one** episode:
/// the counter is monotonic and the wait is an equality, so a second
/// episode on the same counter could advance the count past a slow
/// rechecker (the deadlock [`crate::barrier::tree_barrier`] avoids with
/// parity double-buffering). `scratch` receives the fetch-add result;
/// `result` the observed counter value.
pub fn counter_arrive_and_wait(
    b: &mut ProgramBuilder,
    style: SyncStyle,
    counter: Mem,
    target: impl Into<Operand>,
    scratch: Reg,
    result: Reg,
    backoff: Option<Backoff>,
) {
    b.atom_add(scratch, counter, 1i64);
    wait_until_equals(b, style, counter, target, result, backoff);
}

/// Register assignments for [`episode_counter_barrier`].
#[derive(Debug, Clone, Copy)]
pub struct EpisodeBarrierRegs {
    /// Holds the per-parity episode index `k` (an input, preserved).
    pub epoch: Reg,
    /// Receives the fetch-add old value (the arrival ticket).
    pub arrive: Reg,
    /// Comparison scratch (clobbered).
    pub cmp: Reg,
    /// Wait-result scratch (clobbered).
    pub waitval: Reg,
    /// Release fetch-add scratch (clobbered on the leader path).
    pub release: Reg,
}

/// Emits one episode of a counter barrier with leader election, the shape
/// HeteroSync's AtomicTreeBarr uses at both tree levels.
///
/// `count` participants each fetch-add the counter; the arrival that
/// observes old value `epoch·(count+1) + count-1` is the leader, runs
/// `leader_body`, then bumps the counter once more to release the others,
/// who wait for `(epoch+1)·(count+1)`. The counter therefore advances by
/// `count+1` per episode. Callers multiplexing episodes onto one counter
/// must parity-double-buffer it (see [`crate::barrier::tree_barrier`]) so
/// the equality wait cannot be overtaken.
pub fn episode_counter_barrier(
    b: &mut ProgramBuilder,
    style: SyncStyle,
    counter: Mem,
    count: i64,
    regs: EpisodeBarrierRegs,
    leader_body: impl FnOnce(&mut ProgramBuilder),
) {
    b.atom_add(regs.arrive, counter, 1i64);
    // Leader test: my add was the count-th of this episode on this counter
    // (old value == epoch·(count+1) + count - 1).
    b.alu(AluOp::Mul, regs.cmp, regs.epoch, count + 1);
    b.alu(AluOp::Add, regs.cmp, regs.cmp, count - 1);
    let not_leader = b.new_label();
    let after_wait = b.new_label();
    b.br(Cond::Ne, regs.arrive, Operand::Reg(regs.cmp), not_leader);
    leader_body(b);
    // The leader releases the waiters with the bump.
    b.atom_add(regs.release, counter, 1i64);
    b.jmp(after_wait);
    // Non-leaders wait for counter == (epoch+1)·(count+1).
    b.bind(not_leader);
    b.alu(AluOp::Add, regs.cmp, regs.epoch, 1i64);
    b.alu(AluOp::Mul, regs.cmp, regs.cmp, count + 1);
    wait_until_equals(b, style, counter, regs.cmp, regs.waitval, None);
    b.bind(after_wait);
}

/// Emits a test-and-set acquire of `lock` (0 = free, 1 = held), blocking
/// until acquired. `result` is clobbered.
pub fn acquire_test_and_set(
    b: &mut ProgramBuilder,
    style: SyncStyle,
    lock: Mem,
    result: Reg,
    backoff: Option<Backoff>,
) {
    if let Some(bk) = &backoff {
        b.li(bk.reg, bk.base as i64);
    }
    let retry = b.new_label();
    let done = b.new_label();
    b.bind(retry);
    match style {
        SyncStyle::Busy | SyncStyle::Backoff => {
            b.atom_exch(result, lock, 1i64);
            b.br(Cond::Eq, result, Operand::Imm(0), done);
        }
        SyncStyle::WaitInst => {
            b.atom_exch(result, lock, 1i64);
            b.br(Cond::Eq, result, Operand::Imm(0), done);
            b.wait(lock, 0i64);
        }
        SyncStyle::WaitingAtomic => {
            // Waiting exchange: expect to have observed "free".
            b.atom_wait(AtomicOp::Exch, result, lock, 1i64, 0i64);
            b.br(Cond::Eq, result, Operand::Imm(0), done);
        }
    }
    if let Some(bk) = &backoff {
        emit_backoff_step(b, bk);
    }
    b.jmp(retry);
    b.bind(done);
}

/// Emits a test-and-set release (`lock = 0`). `scratch` is clobbered.
pub fn release_test_and_set(b: &mut ProgramBuilder, lock: Mem, scratch: Reg) {
    b.atom_exch(scratch, lock, 0i64);
}

/// Emits the critical-section body: touch `data_words` shared words behind
/// the lock with plain (non-atomic) read-modify-writes, then compute. The
/// non-atomic increment of the first word is what the mutual-exclusion
/// post-condition checks.
pub fn critical_section(
    b: &mut ProgramBuilder,
    data_base: Mem,
    data_words: u32,
    compute: u32,
    scratch: Reg,
) {
    for i in 0..data_words.max(1) {
        let word = Mem {
            base: data_base.base + (i as u64) * 8,
            index: data_base.index,
            scale: data_base.scale,
        };
        b.ld(scratch, word);
        b.add(scratch, scratch, 1i64);
        b.st(word, scratch);
    }
    if compute > 0 {
        b.compute(compute);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    const LOCK: u64 = 1024;
    const COUNTER: u64 = 2048;

    fn styles() -> [SyncStyle; 4] {
        [
            SyncStyle::Busy,
            SyncStyle::Backoff,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ]
    }

    #[test]
    fn tas_mutex_excludes_in_all_styles() {
        for style in styles() {
            let mut b = ProgramBuilder::new("tas");
            let backoff = matches!(style, SyncStyle::Backoff).then_some(Backoff {
                reg: Reg::R10,
                base: 100,
                max: 1000,
            });
            acquire_test_and_set(&mut b, style, Mem::direct(LOCK), Reg::R0, backoff);
            critical_section(&mut b, Mem::direct(COUNTER), 1, 10, Reg::R1);
            release_test_and_set(&mut b, Mem::direct(LOCK), Reg::R0);
            b.halt();
            let mut m = Machine::new(b.build().unwrap(), 8, 4);
            m.run(1_000_000)
                .unwrap_or_else(|e| panic!("{style:?}: {e}"));
            assert_eq!(m.mem().load(COUNTER), 8, "{style:?}");
            assert_eq!(m.mem().load(LOCK), 0, "{style:?}");
        }
    }

    #[test]
    fn wait_until_equals_with_register_expectation() {
        // Each WG takes a ticket and waits for now-serving == ticket.
        for style in styles() {
            let tail = 64u64;
            let serving = 128u64;
            let mut b = ProgramBuilder::new("ticket");
            b.atom_add(Reg::R1, tail, 1i64);
            wait_until_equals(&mut b, style, Mem::direct(serving), Reg::R1, Reg::R2, None);
            critical_section(&mut b, Mem::direct(COUNTER), 1, 0, Reg::R3);
            b.atom_add(Reg::R0, serving, 1i64);
            b.halt();
            let mut m = Machine::new(b.build().unwrap(), 6, 3);
            m.run(1_000_000)
                .unwrap_or_else(|e| panic!("{style:?}: {e}"));
            assert_eq!(m.mem().load(COUNTER), 6, "{style:?}");
            assert_eq!(m.mem().load(serving), 6, "{style:?}");
        }
    }

    #[test]
    fn backoff_emits_sleep_ladder() {
        let mut b = ProgramBuilder::new("bk");
        acquire_test_and_set(
            &mut b,
            SyncStyle::Busy,
            Mem::direct(LOCK),
            Reg::R0,
            Some(Backoff {
                reg: Reg::R10,
                base: 64,
                max: 4096,
            }),
        );
        b.halt();
        let p = b.build().unwrap();
        let has_sleep = p
            .insts()
            .iter()
            .any(|i| matches!(i, awg_isa::Inst::Sleep(_)));
        assert!(has_sleep);
    }

    #[test]
    fn waiting_atomic_style_emits_expected_operand() {
        let mut b = ProgramBuilder::new("wa");
        wait_until_equals(
            &mut b,
            SyncStyle::WaitingAtomic,
            Mem::direct(64),
            1i64,
            Reg::R0,
            None,
        );
        b.halt();
        let p = b.build().unwrap();
        let waiting_atomics = p
            .insts()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    awg_isa::Inst::Atom {
                        expected: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(waiting_atomics, 1);
    }

    #[test]
    fn wait_inst_style_emits_wait() {
        let mut b = ProgramBuilder::new("wi");
        wait_until_equals(
            &mut b,
            SyncStyle::WaitInst,
            Mem::direct(64),
            1i64,
            Reg::R0,
            None,
        );
        b.halt();
        let p = b.build().unwrap();
        let waits = p
            .insts()
            .iter()
            .filter(|i| matches!(i, awg_isa::Inst::Wait { .. }))
            .count();
        assert_eq!(waits, 1);
    }
}
