//! The inter-work-group synchronization benchmark suite (Table 2).
//!
//! This crate re-implements the HeteroSync benchmarks the paper evaluates —
//! spin mutexes (with and without software backoff), centralized and
//! decentralized ticket locks, centralized and lock-free two-level tree
//! barriers (with and without data exchange), in globally- and
//! locally-scoped variants — plus the hash-table and bank-account
//! applications, all as kernel programs for the `awg-isa` machine.
//!
//! Every benchmark can be emitted in each [`awg_gpu::SyncStyle`], because
//! the paper's architectures use different instructions at the sync points:
//! plain busy-wait atomics (Baseline/Sleep), `wait`-instruction arming
//! (MonRS/MonR), or waiting atomics (Timeout/MonNR/AWG). Each built
//! workload carries machine-checkable post-conditions so runs are validated
//! for *correctness*, not just timed.
//!
//! # Example
//!
//! ```
//! use awg_gpu::SyncStyle;
//! use awg_workloads::{BenchmarkKind, WorkloadParams};
//!
//! let params = WorkloadParams::smoke();
//! let built = BenchmarkKind::SpinMutexGlobal.build(&params, SyncStyle::Busy);
//! assert!(built.program.len() > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod barrier;
pub mod bench;
pub mod characteristics;
pub mod checks;
pub mod context;
pub mod litmus;
pub mod mutex;
pub mod params;
pub mod rw;
pub mod sync_emit;

pub use bench::{BenchmarkKind, BuiltWorkload};
pub use characteristics::{BenchCharacteristics, SyncQuantity};
pub use checks::Check;
pub use params::{Scope, WorkloadParams};
