//! The benchmark registry: every Table 2 entry plus the two applications.

use awg_gpu::{Kernel, SyncStyle, WgResources};
use awg_isa::Program;
use awg_mem::{Addr, Backing};

use crate::apps;
use crate::barrier;
use crate::checks::{self, Check};
use crate::mutex;
use crate::params::{Scope, WorkloadParams};

/// Raw output of a benchmark generator.
#[derive(Debug, Clone)]
pub struct ProgramPieces {
    /// The kernel program.
    pub program: Program,
    /// Initial memory state.
    pub init: Vec<(Addr, i64)>,
    /// Post-conditions.
    pub checks: Vec<Check>,
}

/// The benchmark suite (Table 2 abbreviations in parentheses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkKind {
    /// Test-and-set lock, global scope (SPM_G).
    SpinMutexGlobal,
    /// Test-and-set lock with software backoff, global (SPMBO_G).
    SpinMutexBackoffGlobal,
    /// Centralized ticket lock, global (FAM_G).
    FaMutexGlobal,
    /// Decentralized ticket lock, global (SLM_G).
    SleepMutexGlobal,
    /// Test-and-set lock, local scope (SPM_L).
    SpinMutexLocal,
    /// Test-and-set lock with software backoff, local (SPMBO_L).
    SpinMutexBackoffLocal,
    /// Centralized ticket lock, local (FAM_L).
    FaMutexLocal,
    /// Decentralized ticket lock, local (SLM_L).
    SleepMutexLocal,
    /// Two-level tree barrier (TB_LG).
    TreeBarrier,
    /// Decentralized two-level tree barrier (LFTB_LG).
    LfTreeBarrier,
    /// Two-level tree barrier with data exchange (TBEX_LG).
    TreeBarrierExchange,
    /// Decentralized two-level tree barrier with exchange (LFTBEX_LG).
    LfTreeBarrierExchange,
    /// Lock-based hash table inserts.
    HashTable,
    /// Ordered two-lock bank transfers.
    BankAccount,
    /// Point-to-point producer/consumer pipeline across WGs (the
    /// persistent-RNN-style dependence chain the paper's intro motivates).
    Pipeline,
    /// Writer-preference reader-writer lock (HeteroSync's semaphore class).
    ReaderWriter,
}

impl BenchmarkKind {
    /// The twelve HeteroSync benchmarks of Figs 14/15, in figure order.
    pub fn heterosync_suite() -> [BenchmarkKind; 12] {
        use BenchmarkKind::*;
        [
            SpinMutexGlobal,
            SpinMutexBackoffGlobal,
            FaMutexGlobal,
            SleepMutexGlobal,
            SpinMutexLocal,
            SpinMutexBackoffLocal,
            FaMutexLocal,
            SleepMutexLocal,
            TreeBarrier,
            LfTreeBarrier,
            TreeBarrierExchange,
            LfTreeBarrierExchange,
        ]
    }

    /// Every benchmark including the applications.
    pub fn all() -> [BenchmarkKind; 16] {
        use BenchmarkKind::*;
        [
            SpinMutexGlobal,
            SpinMutexBackoffGlobal,
            FaMutexGlobal,
            SleepMutexGlobal,
            SpinMutexLocal,
            SpinMutexBackoffLocal,
            FaMutexLocal,
            SleepMutexLocal,
            TreeBarrier,
            LfTreeBarrier,
            TreeBarrierExchange,
            LfTreeBarrierExchange,
            HashTable,
            BankAccount,
            Pipeline,
            ReaderWriter,
        ]
    }

    /// The benchmarks the paper modified for the Fig 7 sleep-backoff sweep.
    pub fn backoff_sweep_suite() -> [BenchmarkKind; 6] {
        use BenchmarkKind::*;
        [
            SpinMutexGlobal,
            FaMutexGlobal,
            SpinMutexLocal,
            FaMutexLocal,
            TreeBarrier,
            TreeBarrierExchange,
        ]
    }

    /// Paper abbreviation (Table 2 / figure x-axis label).
    pub fn abbreviation(&self) -> &'static str {
        use BenchmarkKind::*;
        match self {
            SpinMutexGlobal => "SPM_G",
            SpinMutexBackoffGlobal => "SPMBO_G",
            FaMutexGlobal => "FAM_G",
            SleepMutexGlobal => "SLM_G",
            SpinMutexLocal => "SPM_L",
            SpinMutexBackoffLocal => "SPMBO_L",
            FaMutexLocal => "FAM_L",
            SleepMutexLocal => "SLM_L",
            TreeBarrier => "TB_LG",
            LfTreeBarrier => "LFTB_LG",
            TreeBarrierExchange => "TBEX_LG",
            LfTreeBarrierExchange => "LFTBEX_LG",
            HashTable => "HT",
            BankAccount => "BANK",
            Pipeline => "PIPE",
            ReaderWriter => "RW_G",
        }
    }

    /// Table 2's description column.
    pub fn description(&self) -> &'static str {
        use BenchmarkKind::*;
        match self {
            SpinMutexGlobal => "Test-and-set lock",
            SpinMutexBackoffGlobal => "Test-and-set lock w/ exponential backoff",
            FaMutexGlobal => "Centralized ticket lock",
            SleepMutexGlobal => "Decentralized ticket lock",
            SpinMutexLocal => "Test-and-set lock local scope",
            SpinMutexBackoffLocal => "Test-and-set lock w/ backoff local scope",
            FaMutexLocal => "Centralized ticket lock local scope",
            SleepMutexLocal => "Decentralized ticket lock local scope",
            TreeBarrier => "Two-level tree barrier",
            LfTreeBarrier => "Decentralized two-level tree barrier",
            TreeBarrierExchange => "Two-level tree barrier w/ local exchange",
            LfTreeBarrierExchange => "Decentralized two-level tree barrier w/ local exchange",
            HashTable => "Lock-based hash table inserts",
            BankAccount => "Ordered two-lock bank transfers",
            Pipeline => "Point-to-point producer/consumer pipeline",
            ReaderWriter => "Writer-preference reader-writer lock",
        }
    }

    /// Per-benchmark WG resource declaration.
    ///
    /// All benchmarks use 256-work-item WGs (4 wavefronts), so the baseline
    /// CU holds exactly 10 WGs and a full launch is `G = 80, L = 10` — the
    /// configuration both §VI experiments assume (losing one CU makes an
    /// exactly-fitting kernel oversubscribed). Register and LDS footprints
    /// vary per benchmark so the context sizes span the paper's 2–10 KB
    /// (Fig 5).
    pub fn resources(&self) -> WgResources {
        use BenchmarkKind::*;
        let (vgprs_per_wavefront, lds_bytes) = match self {
            SpinMutexGlobal => (2, 0),
            SpinMutexBackoffGlobal => (2, 256),
            FaMutexGlobal => (3, 0),
            SleepMutexGlobal => (3, 512),
            SpinMutexLocal => (2, 512),
            SpinMutexBackoffLocal => (3, 256),
            FaMutexLocal => (4, 0),
            SleepMutexLocal => (4, 512),
            TreeBarrier => (5, 1024),
            LfTreeBarrier => (5, 0),
            TreeBarrierExchange => (8, 512),
            LfTreeBarrierExchange => (7, 0),
            HashTable => (6, 1024),
            BankAccount => (4, 0),
            Pipeline => (5, 256),
            ReaderWriter => (6, 0),
        };
        WgResources {
            wavefronts: 4,
            lds_bytes,
            vgprs_per_wavefront,
        }
    }

    /// Episode multiplier applied to `WorkloadParams::iterations` so every
    /// benchmark's runtime comfortably spans the §VI resource-loss point
    /// (barrier episodes are much shorter than mutex episodes; local-scope
    /// mutexes are ~8× less contended than global ones).
    pub fn episode_weight(&self) -> u32 {
        use BenchmarkKind::*;
        match self {
            TreeBarrier | LfTreeBarrier | TreeBarrierExchange | LfTreeBarrierExchange => 16,
            SpinMutexLocal | SpinMutexBackoffLocal | FaMutexLocal | SleepMutexLocal => 8,
            HashTable | BankAccount => 8,
            Pipeline => 16,
            ReaderWriter => 8,
            _ => 1, // global mutexes already run past the loss point
        }
    }

    /// Builds the benchmark in the given sync style.
    pub fn build(&self, params: &WorkloadParams, style: SyncStyle) -> BuiltWorkload {
        use BenchmarkKind::*;
        let pieces = match self {
            SpinMutexGlobal => mutex::spin_mutex(params, style, Scope::Global, false),
            SpinMutexBackoffGlobal => mutex::spin_mutex(params, style, Scope::Global, true),
            FaMutexGlobal => mutex::fa_mutex(params, style, Scope::Global),
            SleepMutexGlobal => mutex::sleep_mutex(params, style, Scope::Global),
            SpinMutexLocal => mutex::spin_mutex(params, style, Scope::Local, false),
            SpinMutexBackoffLocal => mutex::spin_mutex(params, style, Scope::Local, true),
            FaMutexLocal => mutex::fa_mutex(params, style, Scope::Local),
            SleepMutexLocal => mutex::sleep_mutex(params, style, Scope::Local),
            TreeBarrier => barrier::tree_barrier(params, style, false),
            LfTreeBarrier => barrier::lf_tree_barrier(params, style, false),
            TreeBarrierExchange => barrier::tree_barrier(params, style, true),
            LfTreeBarrierExchange => barrier::lf_tree_barrier(params, style, true),
            HashTable => apps::hash_table(params, style),
            BankAccount => apps::bank_account(params, style),
            Pipeline => apps::pipeline(params, style),
            ReaderWriter => crate::rw::reader_writer(params, style),
        };
        BuiltWorkload {
            kind: *self,
            params: *params,
            style,
            resources: self.resources(),
            program: pieces.program,
            init: pieces.init,
            checks: pieces.checks,
        }
    }
}

impl std::fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// A built, runnable benchmark.
#[derive(Debug, Clone)]
pub struct BuiltWorkload {
    /// Which benchmark.
    pub kind: BenchmarkKind,
    /// Its parameters.
    pub params: WorkloadParams,
    /// The sync style it was emitted in.
    pub style: SyncStyle,
    /// Per-WG resources.
    pub resources: WgResources,
    /// The program.
    pub program: Program,
    /// Initial memory.
    pub init: Vec<(Addr, i64)>,
    /// Post-conditions.
    pub checks: Vec<Check>,
}

impl BuiltWorkload {
    /// Packages the workload as a launchable kernel.
    pub fn kernel(&self) -> Kernel {
        Kernel::new(self.program.clone(), self.params.num_wgs, self.resources)
            .with_cluster(self.params.wgs_per_cluster)
            .with_init_memory(self.init.clone())
    }

    /// Validates the post-conditions against a final memory state.
    ///
    /// # Errors
    ///
    /// Returns descriptions of every violated condition.
    pub fn validate(&self, mem: &Backing) -> Result<(), String> {
        checks::validate(&self.checks, mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_in_all_styles() {
        let params = WorkloadParams::smoke();
        for kind in BenchmarkKind::all() {
            for style in [
                SyncStyle::Busy,
                SyncStyle::WaitInst,
                SyncStyle::WaitingAtomic,
            ] {
                let built = kind.build(&params, style);
                assert!(built.program.verify().is_ok(), "{kind} {style:?}");
                assert!(!built.checks.is_empty(), "{kind} needs post-conditions");
            }
        }
    }

    #[test]
    fn abbreviations_are_unique() {
        let mut abbrevs: Vec<&str> = BenchmarkKind::all()
            .iter()
            .map(|k| k.abbreviation())
            .collect();
        abbrevs.sort_unstable();
        let before = abbrevs.len();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), before);
    }

    #[test]
    fn context_sizes_span_paper_range() {
        // Fig 5: WG contexts between 2 and 10 KB (ours use 64-wide SIMDs).
        let sizes: Vec<u64> = BenchmarkKind::all()
            .iter()
            .map(|k| k.resources().context_bytes(64))
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 2 * 1024, "min context {min}");
        assert!(max <= 10 * 1024, "max context {max}");
        assert!(max >= 2 * min, "contexts should vary: {min}..{max}");
    }

    #[test]
    fn kernels_fit_on_a_baseline_cu_at_full_occupancy() {
        use awg_gpu::GpuConfig;
        let cfg = GpuConfig::isca2020_baseline();
        for kind in BenchmarkKind::all() {
            let cu = awg_gpu::Cu::new(0, &cfg);
            let occ = cu.max_occupancy(&kind.resources());
            assert!(
                occ >= 8,
                "{kind}: occupancy {occ} < 8 breaks the L=8 experiment"
            );
        }
    }

    #[test]
    fn built_kernel_carries_cluster_and_init() {
        let params = WorkloadParams::smoke();
        let built = BenchmarkKind::SleepMutexGlobal.build(&params, SyncStyle::Busy);
        let kernel = built.kernel();
        assert_eq!(kernel.wgs_per_cluster, params.wgs_per_cluster);
        assert!(!kernel.init_memory.is_empty(), "SLM seeds its queue head");
    }
}
