//! Mutex benchmarks: SpinMutex (test-and-set), FAMutex (centralized ticket
//! lock), and SleepMutex (decentralized ticket lock), in globally- and
//! locally-scoped variants (Table 2 rows SPM/FAM/SLM, `_G`/`_L`).
//!
//! Every critical section performs non-atomic read-modify-writes on shared
//! data, so the post-condition `counter == acquisitions` genuinely proves
//! mutual exclusion held throughout the run.

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Special};

use crate::bench::ProgramPieces;
use crate::checks::Check;
use crate::params::{Scope, WorkloadParams};
use crate::sync_emit::{
    acquire_test_and_set, critical_section, release_test_and_set, wait_until_equals, Backoff,
};

/// Register conventions shared by the mutex kernels.
mod regs {
    use awg_isa::Reg;
    pub const SCRATCH: Reg = Reg::R0;
    pub const WG_ID: Reg = Reg::R1;
    pub const CLUSTER: Reg = Reg::R2;
    pub const ITER: Reg = Reg::R3;
    pub const LOCK_IDX: Reg = Reg::R4;
    pub const TICKET: Reg = Reg::R5;
    pub const QIDX: Reg = Reg::R6;
    pub const WAITVAL: Reg = Reg::R7;
    pub const CS: Reg = Reg::R8;
    pub const TMP: Reg = Reg::R9;
    pub const BACKOFF: Reg = Reg::R10;
}

/// Default software-backoff ladder for the `BO` variants.
pub const DEFAULT_BACKOFF: (u32, u32) = (250, 16_000);

fn scope_instances(params: &WorkloadParams, scope: Scope) -> u64 {
    match scope {
        Scope::Global => 1,
        Scope::Local => params.num_clusters(),
    }
}

/// Emits the prologue loading WG id, cluster id, and zeroing the iteration
/// counter, then binds and returns the loop-head label.
fn loop_prologue(b: &mut ProgramBuilder) -> awg_isa::Label {
    b.special(regs::WG_ID, Special::WgId);
    b.special(regs::CLUSTER, Special::ClusterId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);
    head
}

/// Emits the loop epilogue (`iter++; if iter != iterations goto head`) and
/// the final halt.
fn loop_epilogue(b: &mut ProgramBuilder, head: awg_isa::Label, iterations: u32) {
    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(Cond::Lt, regs::ITER, Operand::Imm(iterations as i64), head);
    b.halt();
}

/// Sets `LOCK_IDX` to the sync-variable instance this WG uses.
fn select_instance(b: &mut ProgramBuilder, scope: Scope) {
    match scope {
        Scope::Global => {
            b.li(regs::LOCK_IDX, 0);
        }
        Scope::Local => {
            b.mov(regs::LOCK_IDX, regs::CLUSTER);
        }
    }
}

/// SpinMutex (SPM): test-and-set lock, optional software backoff (SPMBO).
pub fn spin_mutex(
    params: &WorkloadParams,
    style: SyncStyle,
    scope: Scope,
    backoff: bool,
) -> ProgramPieces {
    params.assert_valid();
    let instances = scope_instances(params, scope);
    let mut space = awg_mem::AddressSpace::new();
    let locks = space.alloc_sync_array("spm_locks", instances, true);
    let data = space.alloc_sync_array("spm_data", instances, true);

    let name = match (scope, backoff) {
        (Scope::Global, false) => "SPM_G",
        (Scope::Global, true) => "SPMBO_G",
        (Scope::Local, false) => "SPM_L",
        (Scope::Local, true) => "SPMBO_L",
    };
    let mut b = ProgramBuilder::new(name);
    let head = loop_prologue(&mut b);
    select_instance(&mut b, scope);
    let bk = backoff.then_some(Backoff {
        reg: regs::BACKOFF,
        base: DEFAULT_BACKOFF.0,
        max: DEFAULT_BACKOFF.1,
    });
    let lock_mem = Mem::indexed(locks.base(), regs::LOCK_IDX, locks.stride_bytes());
    acquire_test_and_set(&mut b, style, lock_mem, regs::SCRATCH, bk);
    critical_section(
        &mut b,
        Mem::indexed(data.base(), regs::LOCK_IDX, data.stride_bytes()),
        params.cs_data_words,
        params.cs_compute,
        regs::CS,
    );
    release_test_and_set(&mut b, lock_mem, regs::TMP);
    loop_epilogue(&mut b, head, params.iterations);

    let total = params.total_episodes() as i64;
    ProgramPieces {
        program: b.build().expect("spin mutex verifies"),
        init: Vec::new(),
        checks: vec![
            Check::SumEquals {
                base: data.base(),
                count: instances,
                stride: data.stride_bytes(),
                expect: total,
                label: "mutual exclusion counter",
            },
            Check::SumEquals {
                base: locks.base(),
                count: instances,
                stride: locks.stride_bytes(),
                expect: 0,
                label: "all locks released",
            },
        ],
    }
}

/// FAMutex (FAM): centralized fetch-and-add ticket lock.
pub fn fa_mutex(params: &WorkloadParams, style: SyncStyle, scope: Scope) -> ProgramPieces {
    params.assert_valid();
    let instances = scope_instances(params, scope);
    let mut space = awg_mem::AddressSpace::new();
    let tails = space.alloc_sync_array("fam_tail", instances, true);
    let serving = space.alloc_sync_array("fam_serving", instances, true);
    let data = space.alloc_sync_array("fam_data", instances, true);

    let name = if scope == Scope::Global {
        "FAM_G"
    } else {
        "FAM_L"
    };
    let mut b = ProgramBuilder::new(name);
    let head = loop_prologue(&mut b);
    select_instance(&mut b, scope);
    // Take a ticket, then wait until it is served.
    b.atom_add(
        regs::TICKET,
        Mem::indexed(tails.base(), regs::LOCK_IDX, tails.stride_bytes()),
        1i64,
    );
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(serving.base(), regs::LOCK_IDX, serving.stride_bytes()),
        regs::TICKET,
        regs::WAITVAL,
        None,
    );
    critical_section(
        &mut b,
        Mem::indexed(data.base(), regs::LOCK_IDX, data.stride_bytes()),
        params.cs_data_words,
        params.cs_compute,
        regs::CS,
    );
    b.atom_add(
        regs::TMP,
        Mem::indexed(serving.base(), regs::LOCK_IDX, serving.stride_bytes()),
        1i64,
    );
    loop_epilogue(&mut b, head, params.iterations);

    let total = params.total_episodes() as i64;
    ProgramPieces {
        program: b.build().expect("fa mutex verifies"),
        init: Vec::new(),
        checks: vec![
            Check::SumEquals {
                base: data.base(),
                count: instances,
                stride: data.stride_bytes(),
                expect: total,
                label: "mutual exclusion counter",
            },
            Check::SumEquals {
                base: tails.base(),
                count: instances,
                stride: tails.stride_bytes(),
                expect: total,
                label: "tickets issued",
            },
            Check::SumEquals {
                base: serving.base(),
                count: instances,
                stride: serving.stride_bytes(),
                expect: total,
                label: "tickets served",
            },
        ],
    }
}

/// SleepMutex (SLM): decentralized ticket lock — each acquisition spins on
/// its own queue slot (Fig 10's algorithm, with line-padded entries).
pub fn sleep_mutex(params: &WorkloadParams, style: SyncStyle, scope: Scope) -> ProgramPieces {
    params.assert_valid();
    assert_eq!(
        params.num_wgs % params.wgs_per_cluster,
        0,
        "SLM requires uniform clusters"
    );
    let instances = scope_instances(params, scope);
    let per_instance_episodes = params.total_episodes() / instances;
    // One queue per instance; +1 slot because the last release unlocks the
    // slot past the final acquisition.
    let qlen = per_instance_episodes + 1;
    let mut space = awg_mem::AddressSpace::new();
    let tails = space.alloc_sync_array("slm_tail", instances, true);
    let queue = space.alloc_sync_array("slm_queue", instances * qlen, true);
    let data = space.alloc_sync_array("slm_data", instances, true);

    // Initially the head slot of every queue is unlocked.
    let init: Vec<(u64, i64)> = (0..instances).map(|c| (queue.at(c * qlen), 1)).collect();

    let name = if scope == Scope::Global {
        "SLM_G"
    } else {
        "SLM_L"
    };
    let mut b = ProgramBuilder::new(name);
    let head = loop_prologue(&mut b);
    select_instance(&mut b, scope);
    // my = fetch_add(tail); slot = instance*qlen + my
    b.atom_add(
        regs::TICKET,
        Mem::indexed(tails.base(), regs::LOCK_IDX, tails.stride_bytes()),
        1i64,
    );
    b.alu(AluOp::Mul, regs::QIDX, regs::LOCK_IDX, qlen as i64);
    b.alu(
        AluOp::Add,
        regs::QIDX,
        regs::QIDX,
        Operand::Reg(regs::TICKET),
    );
    // Spin on my own slot becoming 1.
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(queue.base(), regs::QIDX, queue.stride_bytes()),
        1i64,
        regs::WAITVAL,
        None,
    );
    critical_section(
        &mut b,
        Mem::indexed(data.base(), regs::LOCK_IDX, data.stride_bytes()),
        params.cs_data_words,
        params.cs_compute,
        regs::CS,
    );
    // Release: retire my slot, unlock the next.
    b.atom_exch(
        regs::TMP,
        Mem::indexed(queue.base(), regs::QIDX, queue.stride_bytes()),
        -1i64,
    );
    b.add(regs::QIDX, regs::QIDX, 1i64);
    b.atom_exch(
        regs::TMP,
        Mem::indexed(queue.base(), regs::QIDX, queue.stride_bytes()),
        1i64,
    );
    loop_epilogue(&mut b, head, params.iterations);

    let total = params.total_episodes() as i64;
    let mut checks = vec![
        Check::SumEquals {
            base: data.base(),
            count: instances,
            stride: data.stride_bytes(),
            expect: total,
            label: "mutual exclusion counter",
        },
        Check::SumEquals {
            base: tails.base(),
            count: instances,
            stride: tails.stride_bytes(),
            expect: total,
            label: "queue tickets issued",
        },
    ];
    for c in 0..instances {
        checks.push(Check::WordEquals {
            addr: queue.at(c * qlen + per_instance_episodes),
            expect: 1,
            label: "queue fully drained",
        });
    }
    ProgramPieces {
        program: b.build().expect("sleep mutex verifies"),
        init,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    fn run_functional(pieces: &ProgramPieces, params: &WorkloadParams) {
        let mut m = Machine::new(
            pieces.program.clone(),
            params.num_wgs,
            params.wgs_per_cluster,
        );
        for &(addr, v) in &pieces.init {
            m.mem_mut().store(addr, v);
        }
        m.run(20_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
        crate::checks::validate(&pieces.checks, m.mem())
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
    }

    fn all_styles() -> [SyncStyle; 3] {
        [
            SyncStyle::Busy,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ]
    }

    #[test]
    fn spin_mutex_correct_all_styles_and_scopes() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            for scope in [Scope::Global, Scope::Local] {
                for backoff in [false, true] {
                    run_functional(&spin_mutex(&params, style, scope, backoff), &params);
                }
            }
        }
    }

    #[test]
    fn fa_mutex_correct_all_styles_and_scopes() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            for scope in [Scope::Global, Scope::Local] {
                run_functional(&fa_mutex(&params, style, scope), &params);
            }
        }
    }

    #[test]
    fn sleep_mutex_correct_all_styles_and_scopes() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            for scope in [Scope::Global, Scope::Local] {
                run_functional(&sleep_mutex(&params, style, scope), &params);
            }
        }
    }

    #[test]
    fn paper_scale_spin_mutex_functional() {
        let params = WorkloadParams {
            iterations: 2,
            ..WorkloadParams::isca2020()
        };
        run_functional(
            &spin_mutex(&params, SyncStyle::Busy, Scope::Global, false),
            &params,
        );
    }

    #[test]
    fn local_scope_uses_one_lock_per_cluster() {
        let params = WorkloadParams::smoke();
        let pieces = spin_mutex(&params, SyncStyle::Busy, Scope::Local, false);
        // Two clusters of four: the counter check must span 2 instances.
        match &pieces.checks[0] {
            Check::SumEquals { count, .. } => assert_eq!(*count, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slm_init_unlocks_queue_heads() {
        let params = WorkloadParams::smoke();
        let pieces = sleep_mutex(&params, SyncStyle::Busy, Scope::Local);
        // Two clusters: two queue heads must start unlocked.
        assert_eq!(pieces.init.len(), 2);
        assert!(pieces.init.iter().all(|&(_, v)| v == 1));
    }
}
