//! Workload parameters (Table 2's `G`, `L`, `n`, `d`).

/// Synchronization variable scope (the `_G` / `_L` benchmark suffixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// One set of sync variables shared by all WGs.
    Global,
    /// One set of sync variables per cluster of `L` WGs (HeteroSync's
    /// locally-scoped variants, which contend only within a CU's worth of
    /// WGs).
    Local,
}

/// Parameters shared by every benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Total WGs (`G`).
    pub num_wgs: u64,
    /// WGs per cluster (`L` — WGs per CU at launch).
    pub wgs_per_cluster: u64,
    /// Synchronization episodes per WG (lock acquisitions / barrier
    /// phases).
    pub iterations: u32,
    /// Critical-section / inter-barrier compute, in cycles.
    pub cs_compute: u32,
    /// Shared-data words touched per critical section (`d`).
    pub cs_data_words: u32,
    /// Seed for workloads with pseudo-random access patterns.
    pub seed: u64,
}

impl WorkloadParams {
    /// The paper-scale configuration: the kernel exactly fills the Table 1
    /// machine — 80 WGs over 8 clusters of 10 (the baseline CU holds ten
    /// 4-wavefront WGs). Losing one CU (§VI) then oversubscribes it.
    pub fn isca2020() -> Self {
        WorkloadParams {
            num_wgs: 80,
            wgs_per_cluster: 10,
            iterations: 4,
            cs_compute: 100,
            cs_data_words: 4,
            seed: 0xA576_15CA_2020,
        }
    }

    /// A small configuration for fast tests.
    pub fn smoke() -> Self {
        WorkloadParams {
            num_wgs: 8,
            wgs_per_cluster: 4,
            iterations: 2,
            cs_compute: 100,
            cs_data_words: 2,
            seed: 7,
        }
    }

    /// Number of clusters (`G / L`, rounded up).
    pub fn num_clusters(&self) -> u64 {
        self.num_wgs.div_ceil(self.wgs_per_cluster)
    }

    /// Total synchronization episodes across the grid.
    pub fn total_episodes(&self) -> u64 {
        self.num_wgs * self.iterations as u64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero WGs, zero cluster width,
    /// cluster width exceeding the grid, or zero iterations).
    pub fn assert_valid(&self) {
        assert!(self.num_wgs > 0, "need at least one WG");
        assert!(self.wgs_per_cluster > 0, "cluster width must be positive");
        assert!(
            self.wgs_per_cluster <= self.num_wgs,
            "cluster wider than the grid"
        );
        assert!(self.iterations > 0, "need at least one iteration");
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::isca2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = WorkloadParams::isca2020();
        p.assert_valid();
        assert_eq!(p.num_clusters(), 8);
        assert_eq!(p.total_episodes(), 320);
    }

    #[test]
    fn clusters_round_up() {
        let p = WorkloadParams {
            num_wgs: 10,
            wgs_per_cluster: 4,
            ..WorkloadParams::smoke()
        };
        assert_eq!(p.num_clusters(), 3);
    }

    #[test]
    #[should_panic(expected = "cluster wider")]
    fn wide_cluster_rejected() {
        WorkloadParams {
            num_wgs: 2,
            wgs_per_cluster: 4,
            ..WorkloadParams::smoke()
        }
        .assert_valid();
    }
}
