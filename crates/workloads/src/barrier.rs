//! Barrier benchmarks: the centralized two-level atomic tree barrier
//! (TB_LG / TBEX_LG) and the decentralized lock-free tree barrier
//! (LFTB_LG / LFTBEX_LG) of Table 2.
//!
//! Counters and sense variables are *monotonic* (the sense for episode `k`
//! is `k+1`), which removes the reset races of the classic sense-reversing
//! formulation. Correctness is validated two ways: an in-kernel check that
//! the global arrival counter has reached `G·(k+1)` after every barrier
//! (any WG released early trips an error flag), and — in the exchange
//! variants — a neighbor data exchange across the barrier whose value is
//! verified after it.

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Label, Mem, Operand, ProgramBuilder, Special};

use crate::bench::ProgramPieces;
use crate::checks::Check;
use crate::params::WorkloadParams;
use crate::sync_emit::{self, wait_until_equals};

mod regs {
    use awg_isa::Reg;
    pub const SCRATCH: Reg = Reg::R0;
    pub const WG_ID: Reg = Reg::R1;
    pub const CLUSTER: Reg = Reg::R2;
    pub const ITER: Reg = Reg::R3;
    pub const ARRIVE: Reg = Reg::R5;
    pub const GARRIVE: Reg = Reg::R6;
    pub const WAITVAL: Reg = Reg::R7;
    pub const PHASEVAL: Reg = Reg::R8;
    pub const TARGET: Reg = Reg::R11;
    pub const CMP: Reg = Reg::R12;
    pub const NEIGHBOR: Reg = Reg::R13;
    pub const LID: Reg = Reg::R14;
    pub const LOOPV: Reg = Reg::R15;
    pub const IDX: Reg = Reg::R16;
    pub const EXVAL: Reg = Reg::R17;
    pub const SLOTIDX: Reg = Reg::R20;
    pub const PARITY: Reg = Reg::R21;
    pub const EPOCH: Reg = Reg::R22;
}

struct BarrierLayout {
    phase: u64,
    error: u64,
    slots: Option<awg_mem::addr::SyncArray>,
}

fn emit_prologue(b: &mut ProgramBuilder) -> Label {
    b.special(regs::WG_ID, Special::WgId);
    b.special(regs::CLUSTER, Special::ClusterId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);
    // TARGET = iter + 1 (the monotonic sense value for this episode).
    b.alu(AluOp::Add, regs::TARGET, regs::ITER, 1i64);
    head
}

/// Sets `SLOTIDX = (iter mod 2)·G + index` — the exchange slots are
/// double-buffered by barrier parity so a fast WG's next-iteration store
/// cannot clobber a value a slow WG has yet to read (a WG can lag at most
/// one episode behind, so two buffers suffice).
fn emit_slot_index(b: &mut ProgramBuilder, params: &WorkloadParams, index: awg_isa::Reg) {
    b.alu(AluOp::Rem, regs::SLOTIDX, regs::ITER, 2i64);
    b.alu(
        AluOp::Mul,
        regs::SLOTIDX,
        regs::SLOTIDX,
        params.num_wgs as i64,
    );
    b.alu(
        AluOp::Add,
        regs::SLOTIDX,
        regs::SLOTIDX,
        Operand::Reg(index),
    );
}

/// Pre-barrier bookkeeping: arrival marker, optional exchange store.
fn emit_pre_barrier(b: &mut ProgramBuilder, params: &WorkloadParams, layout: &BarrierLayout) {
    b.atom_add(regs::SCRATCH, layout.phase, 1i64);
    if let Some(slots) = &layout.slots {
        // slot[parity][m] = (m+1)*1000 + iter
        b.alu(AluOp::Add, regs::EXVAL, regs::WG_ID, 1i64);
        b.alu(AluOp::Mul, regs::EXVAL, regs::EXVAL, 1000i64);
        b.alu(
            AluOp::Add,
            regs::EXVAL,
            regs::EXVAL,
            Operand::Reg(regs::ITER),
        );
        emit_slot_index(b, params, regs::WG_ID);
        b.st(
            Mem::indexed(slots.base(), regs::SLOTIDX, slots.stride_bytes()),
            regs::EXVAL,
        );
    }
}

/// Post-barrier validation: the phase counter must have reached `G·(k+1)`,
/// and in the exchange variants the neighbor's slot must carry this
/// episode's value.
fn emit_post_barrier(b: &mut ProgramBuilder, params: &WorkloadParams, layout: &BarrierLayout) {
    b.atom_load(regs::PHASEVAL, layout.phase);
    b.alu(AluOp::Mul, regs::CMP, regs::TARGET, params.num_wgs as i64);
    let phase_ok = b.new_label();
    b.br(Cond::Ge, regs::PHASEVAL, Operand::Reg(regs::CMP), phase_ok);
    b.st(layout.error, 1i64);
    b.bind(phase_ok);
    if let Some(slots) = &layout.slots {
        // neighbor = (m+1) mod G; expect (neighbor+1)*1000 + iter
        b.alu(AluOp::Add, regs::NEIGHBOR, regs::WG_ID, 1i64);
        b.alu(
            AluOp::Rem,
            regs::NEIGHBOR,
            regs::NEIGHBOR,
            params.num_wgs as i64,
        );
        b.alu(AluOp::Add, regs::EXVAL, regs::NEIGHBOR, 1i64);
        b.alu(AluOp::Mul, regs::EXVAL, regs::EXVAL, 1000i64);
        b.alu(
            AluOp::Add,
            regs::EXVAL,
            regs::EXVAL,
            Operand::Reg(regs::ITER),
        );
        emit_slot_index(b, params, regs::NEIGHBOR);
        b.ld(
            regs::WAITVAL,
            Mem::indexed(slots.base(), regs::SLOTIDX, slots.stride_bytes()),
        );
        let ex_ok = b.new_label();
        b.br(Cond::Eq, regs::WAITVAL, Operand::Reg(regs::EXVAL), ex_ok);
        b.st(layout.error, 2i64);
        b.bind(ex_ok);
    }
    if params.cs_compute > 0 {
        b.compute(params.cs_compute);
    }
}

fn emit_epilogue(b: &mut ProgramBuilder, head: Label, iterations: u32) {
    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(Cond::Lt, regs::ITER, Operand::Imm(iterations as i64), head);
    b.halt();
}

fn common_checks(params: &WorkloadParams, layout: &BarrierLayout) -> Vec<Check> {
    vec![
        Check::ErrorFlagClear {
            addr: layout.error,
            label: "barrier released a WG early",
        },
        Check::WordEquals {
            addr: layout.phase,
            expect: (params.num_wgs * params.iterations as u64) as i64,
            label: "total barrier arrivals",
        },
    ]
}

/// TB_LG / TBEX_LG: two-level tree barrier on centralized atomic counters.
///
/// HeteroSync's AtomicTreeBarr waiters poll the *arrival counter* itself
/// (Table 2: "updates per sync var until condition met = L"), which is the
/// signature AWG's Bloom predictor keys on. Counters advance by `L+1` per
/// episode (`L` arrivals plus one release bump by the cluster leader after
/// the global phase), and are **parity double-buffered**: episode `k` uses
/// counter `k mod 2`, so the waited-for value cannot be advanced past by
/// fast WGs — reaching the same-parity episode `k+2` requires everyone to
/// have passed episode `k` first. Equality conditions therefore never slip
/// by a late rechecker (a monotonic single counter would deadlock waiters
/// whose timeout recheck lands after faster WGs pushed the count onward).
pub fn tree_barrier(params: &WorkloadParams, style: SyncStyle, exchange: bool) -> ProgramPieces {
    params.assert_valid();
    assert_eq!(
        params.num_wgs % params.wgs_per_cluster,
        0,
        "tree barrier requires uniform clusters"
    );
    let l = params.wgs_per_cluster as i64;
    let c = params.num_clusters() as i64;
    let mut space = awg_mem::AddressSpace::new();
    // Parity-major: counter for (parity, cluster) at index parity·C + cluster.
    let lcount = space.alloc_sync_array("tb_lcount", 2 * c as u64, true);
    let gcount = space.alloc_sync_array("tb_gcount", 2, true);
    let phase = space.alloc_sync_var("tb_phase");
    let error = space.alloc_sync_var("tb_error");
    let slots = exchange.then(|| space.alloc_sync_array("tb_slots", params.num_wgs * 2, true));
    let layout = BarrierLayout {
        phase,
        error,
        slots,
    };

    let mut b = ProgramBuilder::new(if exchange { "TBEX_LG" } else { "TB_LG" });
    let head = emit_prologue(&mut b);
    emit_pre_barrier(&mut b, params, &layout);

    // PARITY = k mod 2; EPOCH = k/2 (per-parity episode index).
    b.alu(AluOp::Rem, regs::PARITY, regs::ITER, 2i64);
    b.alu(AluOp::Div, regs::EPOCH, regs::ITER, 2i64);
    // IDX = parity·C + cluster selects this episode's local counter.
    b.alu(AluOp::Mul, regs::IDX, regs::PARITY, c);
    b.alu(
        AluOp::Add,
        regs::IDX,
        regs::IDX,
        Operand::Reg(regs::CLUSTER),
    );
    let lcount_mem = Mem::indexed(lcount.base(), regs::IDX, lcount.stride_bytes());

    // Both tree levels are the same leader-elected episode barrier: the
    // cluster leader's body is the identical shape on the global counter
    // (whose own leader body is empty — its release bump frees the other
    // cluster leaders).
    let ebr = |arrive| sync_emit::EpisodeBarrierRegs {
        epoch: regs::EPOCH,
        arrive,
        cmp: regs::CMP,
        waitval: regs::WAITVAL,
        release: regs::SCRATCH,
    };
    sync_emit::episode_counter_barrier(&mut b, style, lcount_mem, l, ebr(regs::ARRIVE), |b| {
        let gcount_mem = Mem::indexed(gcount.base(), regs::PARITY, gcount.stride_bytes());
        sync_emit::episode_counter_barrier(b, style, gcount_mem, c, ebr(regs::GARRIVE), |_| {});
    });

    emit_post_barrier(&mut b, params, &layout);
    emit_epilogue(&mut b, head, params.iterations);

    let iters = params.iterations as i64;
    let mut checks = common_checks(params, &layout);
    checks.extend([
        Check::SumEquals {
            base: gcount.base(),
            count: 2,
            stride: gcount.stride_bytes(),
            expect: (c + 1) * iters,
            label: "global counter episodes",
        },
        Check::SumEquals {
            base: lcount.base(),
            count: 2 * c as u64,
            stride: lcount.stride_bytes(),
            expect: c * (l + 1) * iters,
            label: "local counter episodes",
        },
    ]);
    ProgramPieces {
        program: b.build().expect("tree barrier verifies"),
        init: Vec::new(),
        checks,
    }
}

/// LFTB_LG / LFTBEX_LG: decentralized lock-free tree barrier — every sync
/// variable has exactly one condition and one waiter (Table 2).
pub fn lf_tree_barrier(params: &WorkloadParams, style: SyncStyle, exchange: bool) -> ProgramPieces {
    params.assert_valid();
    assert_eq!(
        params.num_wgs % params.wgs_per_cluster,
        0,
        "tree barrier requires uniform clusters"
    );
    let l = params.wgs_per_cluster;
    let c = params.num_clusters();
    let g = params.num_wgs;
    let mut space = awg_mem::AddressSpace::new();
    let arrive = space.alloc_sync_array("lftb_arrive", g, true);
    let cluster_arrive = space.alloc_sync_array("lftb_cluster_arrive", c, true);
    let release_cluster = space.alloc_sync_array("lftb_release_cluster", c, true);
    let release_wg = space.alloc_sync_array("lftb_release_wg", g, true);
    let phase = space.alloc_sync_var("lftb_phase");
    let error = space.alloc_sync_var("lftb_error");
    let slots = exchange.then(|| space.alloc_sync_array("lftb_slots", g * 2, true));
    let layout = BarrierLayout {
        phase,
        error,
        slots,
    };

    let mut b = ProgramBuilder::new(if exchange { "LFTBEX_LG" } else { "LFTB_LG" });
    let head = emit_prologue(&mut b);
    emit_pre_barrier(&mut b, params, &layout);

    b.alu(AluOp::Rem, regs::LID, regs::WG_ID, l as i64);
    let member = b.new_label();
    let after = b.new_label();
    b.br(Cond::Ne, regs::LID, Operand::Imm(0), member);

    // === Local master ===
    // Wait for each member's arrival flag.
    b.li(regs::LOOPV, 1);
    let mwait = b.new_label();
    let mwait_done = b.new_label();
    b.bind(mwait);
    b.br(Cond::Ge, regs::LOOPV, Operand::Imm(l as i64), mwait_done);
    b.alu(AluOp::Mul, regs::IDX, regs::CLUSTER, l as i64);
    b.alu(AluOp::Add, regs::IDX, regs::IDX, Operand::Reg(regs::LOOPV));
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(arrive.base(), regs::IDX, arrive.stride_bytes()),
        regs::TARGET,
        regs::WAITVAL,
        None,
    );
    b.add(regs::LOOPV, regs::LOOPV, 1i64);
    b.jmp(mwait);
    b.bind(mwait_done);
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(
            cluster_arrive.base(),
            regs::CLUSTER,
            cluster_arrive.stride_bytes(),
        ),
        regs::TARGET,
    );

    // === Global master (WG 0) gathers clusters and releases them ===
    let not_gmaster = b.new_label();
    b.br(Cond::Ne, regs::WG_ID, Operand::Imm(0), not_gmaster);
    b.li(regs::LOOPV, 1);
    let gwait = b.new_label();
    let gwait_done = b.new_label();
    b.bind(gwait);
    b.br(Cond::Ge, regs::LOOPV, Operand::Imm(c as i64), gwait_done);
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(
            cluster_arrive.base(),
            regs::LOOPV,
            cluster_arrive.stride_bytes(),
        ),
        regs::TARGET,
        regs::WAITVAL,
        None,
    );
    b.add(regs::LOOPV, regs::LOOPV, 1i64);
    b.jmp(gwait);
    b.bind(gwait_done);
    b.li(regs::LOOPV, 0);
    let grel = b.new_label();
    let grel_done = b.new_label();
    b.bind(grel);
    b.br(Cond::Ge, regs::LOOPV, Operand::Imm(c as i64), grel_done);
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(
            release_cluster.base(),
            regs::LOOPV,
            release_cluster.stride_bytes(),
        ),
        regs::TARGET,
    );
    b.add(regs::LOOPV, regs::LOOPV, 1i64);
    b.jmp(grel);
    b.bind(grel_done);
    b.bind(not_gmaster);

    // Every local master waits for its cluster's release, then releases its
    // members.
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(
            release_cluster.base(),
            regs::CLUSTER,
            release_cluster.stride_bytes(),
        ),
        regs::TARGET,
        regs::WAITVAL,
        None,
    );
    b.li(regs::LOOPV, 1);
    let mrel = b.new_label();
    let mrel_done = b.new_label();
    b.bind(mrel);
    b.br(Cond::Ge, regs::LOOPV, Operand::Imm(l as i64), mrel_done);
    b.alu(AluOp::Mul, regs::IDX, regs::CLUSTER, l as i64);
    b.alu(AluOp::Add, regs::IDX, regs::IDX, Operand::Reg(regs::LOOPV));
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(release_wg.base(), regs::IDX, release_wg.stride_bytes()),
        regs::TARGET,
    );
    b.add(regs::LOOPV, regs::LOOPV, 1i64);
    b.jmp(mrel);
    b.bind(mrel_done);
    b.jmp(after);

    // === Member ===
    b.bind(member);
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(arrive.base(), regs::WG_ID, arrive.stride_bytes()),
        regs::TARGET,
    );
    wait_until_equals(
        &mut b,
        style,
        Mem::indexed(release_wg.base(), regs::WG_ID, release_wg.stride_bytes()),
        regs::TARGET,
        regs::WAITVAL,
        None,
    );
    b.bind(after);

    emit_post_barrier(&mut b, params, &layout);
    emit_epilogue(&mut b, head, params.iterations);

    let iters = params.iterations as i64;
    let members = (g - c) as i64;
    let mut checks = common_checks(params, &layout);
    checks.extend([
        Check::SumEquals {
            base: arrive.base(),
            count: g,
            stride: arrive.stride_bytes(),
            expect: members * iters,
            label: "member arrival flags",
        },
        Check::SumEquals {
            base: cluster_arrive.base(),
            count: c,
            stride: cluster_arrive.stride_bytes(),
            expect: c as i64 * iters,
            label: "cluster arrival flags",
        },
        Check::SumEquals {
            base: release_cluster.base(),
            count: c,
            stride: release_cluster.stride_bytes(),
            expect: c as i64 * iters,
            label: "cluster release flags",
        },
        Check::SumEquals {
            base: release_wg.base(),
            count: g,
            stride: release_wg.stride_bytes(),
            expect: members * iters,
            label: "member release flags",
        },
    ]);
    ProgramPieces {
        program: b.build().expect("lock-free tree barrier verifies"),
        init: Vec::new(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    fn run_functional(pieces: &ProgramPieces, params: &WorkloadParams) {
        let mut m = Machine::new(
            pieces.program.clone(),
            params.num_wgs,
            params.wgs_per_cluster,
        );
        for &(addr, v) in &pieces.init {
            m.mem_mut().store(addr, v);
        }
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
        crate::checks::validate(&pieces.checks, m.mem())
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
    }

    fn all_styles() -> [SyncStyle; 3] {
        [
            SyncStyle::Busy,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ]
    }

    #[test]
    fn tree_barrier_correct_all_styles() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            for exchange in [false, true] {
                run_functional(&tree_barrier(&params, style, exchange), &params);
            }
        }
    }

    #[test]
    fn lf_tree_barrier_correct_all_styles() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            for exchange in [false, true] {
                run_functional(&lf_tree_barrier(&params, style, exchange), &params);
            }
        }
    }

    #[test]
    fn single_cluster_degenerates_gracefully() {
        let params = WorkloadParams {
            num_wgs: 4,
            wgs_per_cluster: 4,
            ..WorkloadParams::smoke()
        };
        run_functional(&tree_barrier(&params, SyncStyle::Busy, false), &params);
        run_functional(&lf_tree_barrier(&params, SyncStyle::Busy, false), &params);
    }

    #[test]
    fn paper_scale_tree_barrier_functional() {
        let params = WorkloadParams {
            iterations: 2,
            cs_compute: 0,
            ..WorkloadParams::isca2020()
        };
        run_functional(&tree_barrier(&params, SyncStyle::Busy, false), &params);
    }

    #[test]
    fn exchange_variant_allocates_slots() {
        let params = WorkloadParams::smoke();
        let plain = tree_barrier(&params, SyncStyle::Busy, false);
        let ex = tree_barrier(&params, SyncStyle::Busy, true);
        assert!(ex.program.len() > plain.program.len());
    }
}
