//! Reader–writer lock benchmark (HeteroSync's semaphore class).
//!
//! A writer-preference RW lock over two sync variables: `writer_flag`
//! (0 = no writer, 1 = writer present or pending) and `reader_count`.
//! Every fourth WG is a writer.
//!
//! * **Reader acquire**: wait `writer_flag == 0`; `reader_count += 1`;
//!   re-check the flag (a writer may have arrived in between) and back out
//!   if so. Release: `reader_count -= 1`.
//! * **Writer acquire**: test-and-set `writer_flag` (blocks new readers),
//!   then wait `reader_count == 0`. Release: `writer_flag = 0`.
//!
//! Writers set every data word to a fresh version value; readers load two
//! words and trip the error flag if they ever observe a torn (mixed-
//! version) snapshot — the read-side exclusion witness. The write counter
//! witnesses writer–writer exclusion.

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Special};

use crate::bench::ProgramPieces;
use crate::checks::Check;
use crate::params::WorkloadParams;
use crate::sync_emit::{acquire_test_and_set, wait_until_equals};

mod regs {
    use awg_isa::Reg;
    pub const SCRATCH: Reg = Reg::R0;
    pub const WG_ID: Reg = Reg::R1;
    pub const ITER: Reg = Reg::R3;
    pub const ROLE: Reg = Reg::R4;
    pub const WAITVAL: Reg = Reg::R7;
    pub const V0: Reg = Reg::R8;
    pub const V1: Reg = Reg::R9;
    pub const TMP: Reg = Reg::R10;
    pub const VERSION: Reg = Reg::R11;
}

/// Every `WRITER_STRIDE`-th WG is a writer.
pub const WRITER_STRIDE: u64 = 4;

/// Number of versioned data words behind the lock.
pub const DATA_WORDS: u64 = 2;

/// Builds the RW-lock benchmark.
pub fn reader_writer(params: &WorkloadParams, style: SyncStyle) -> ProgramPieces {
    params.assert_valid();
    let g = params.num_wgs;
    let writers = g.div_ceil(WRITER_STRIDE);
    let mut space = awg_mem::AddressSpace::new();
    let writer_flag = space.alloc_sync_var("rw_writer_flag");
    let reader_count = space.alloc_sync_var("rw_reader_count");
    let write_counter = space.alloc_sync_var("rw_write_counter");
    let data = space.alloc_sync_array("rw_data", DATA_WORDS, false);
    let error = space.alloc_sync_var("rw_error");

    let mut b = ProgramBuilder::new("RW_G");
    b.special(regs::WG_ID, Special::WgId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);
    b.alu(AluOp::Rem, regs::ROLE, regs::WG_ID, WRITER_STRIDE as i64);
    let writer = b.new_label();
    let next = b.new_label();
    b.br(Cond::Eq, regs::ROLE, Operand::Imm(0), writer);

    // === Reader ===
    let racquire = b.new_label();
    b.bind(racquire);
    wait_until_equals(
        &mut b,
        style,
        Mem::direct(writer_flag),
        0i64,
        regs::WAITVAL,
        None,
    );
    b.atom_add(regs::SCRATCH, reader_count, 1i64);
    // Re-check: a writer may have set the flag between the wait and our
    // registration; back out so it can proceed.
    b.atom_load(regs::WAITVAL, writer_flag);
    let rread = b.new_label();
    b.br(Cond::Eq, regs::WAITVAL, Operand::Imm(0), rread);
    b.atom(awg_mem::AtomicOp::Sub, regs::SCRATCH, reader_count, 1i64);
    b.jmp(racquire);
    b.bind(rread);
    // Snapshot two words; they must carry the same version.
    b.ld(regs::V0, data.at(0));
    b.ld(regs::V1, data.at(1));
    if params.cs_compute > 0 {
        b.compute(params.cs_compute / 2);
    }
    let consistent = b.new_label();
    b.br(Cond::Eq, regs::V0, Operand::Reg(regs::V1), consistent);
    b.st(error, 1i64);
    b.bind(consistent);
    b.atom(awg_mem::AtomicOp::Sub, regs::SCRATCH, reader_count, 1i64);
    b.jmp(next);

    // === Writer ===
    b.bind(writer);
    acquire_test_and_set(&mut b, style, Mem::direct(writer_flag), regs::SCRATCH, None);
    wait_until_equals(
        &mut b,
        style,
        Mem::direct(reader_count),
        0i64,
        regs::WAITVAL,
        None,
    );
    // Exclusive section: bump the counter, stamp every word with the new
    // version (interleaving compute so torn reads would be visible).
    b.ld(regs::VERSION, write_counter);
    b.alu(AluOp::Add, regs::VERSION, regs::VERSION, 1i64);
    b.st(write_counter, regs::VERSION);
    b.st(data.at(0), regs::VERSION);
    if params.cs_compute > 0 {
        b.compute(params.cs_compute);
    }
    b.st(data.at(1), regs::VERSION);
    b.atom_exch(regs::TMP, writer_flag, 0i64);
    b.bind(next);

    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(
        Cond::Lt,
        regs::ITER,
        Operand::Imm(params.iterations as i64),
        head,
    );
    b.halt();

    let total_writes = (writers * params.iterations as u64) as i64;
    ProgramPieces {
        program: b.build().expect("rw lock verifies"),
        init: Vec::new(),
        checks: vec![
            Check::ErrorFlagClear {
                addr: error,
                label: "reader observed a torn write",
            },
            Check::WordEquals {
                addr: write_counter,
                expect: total_writes,
                label: "writer-writer exclusion counter",
            },
            Check::WordEquals {
                addr: data.at(0),
                expect: total_writes,
                label: "final version word 0",
            },
            Check::WordEquals {
                addr: data.at(1),
                expect: total_writes,
                label: "final version word 1",
            },
            Check::WordEquals {
                addr: reader_count,
                expect: 0,
                label: "all readers released",
            },
            Check::WordEquals {
                addr: writer_flag,
                expect: 0,
                label: "writer flag released",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    fn run_functional(pieces: &ProgramPieces, params: &WorkloadParams) {
        let mut m = Machine::new(
            pieces.program.clone(),
            params.num_wgs,
            params.wgs_per_cluster,
        );
        for &(addr, v) in &pieces.init {
            m.mem_mut().store(addr, v);
        }
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
        crate::checks::validate(&pieces.checks, m.mem())
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
    }

    #[test]
    fn rw_lock_correct_all_styles() {
        let params = WorkloadParams::smoke();
        for style in [
            SyncStyle::Busy,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ] {
            run_functional(&reader_writer(&params, style), &params);
        }
    }

    #[test]
    fn rw_lock_larger_grid() {
        let params = WorkloadParams {
            num_wgs: 24,
            wgs_per_cluster: 8,
            iterations: 3,
            ..WorkloadParams::smoke()
        };
        run_functional(&reader_writer(&params, SyncStyle::Busy), &params);
    }

    #[test]
    fn writer_count_matches_role_assignment() {
        // 8 WGs, stride 4 => WGs 0 and 4 write; 2 iterations => counter 4.
        let params = WorkloadParams::smoke();
        let pieces = reader_writer(&params, SyncStyle::Busy);
        let counter_check = pieces
            .checks
            .iter()
            .find_map(|c| match c {
                Check::WordEquals { expect, label, .. }
                    if *label == "writer-writer exclusion counter" =>
                {
                    Some(*expect)
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(counter_check, 4);
    }
}
