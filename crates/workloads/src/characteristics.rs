//! Table 2: benchmark synchronization characteristics.
//!
//! `G` = total WGs, `L` = WGs per CU (cluster), `n` = work-items per WG.
//! Quantities are symbolic so the table renders exactly as in the paper and
//! still evaluates numerically for any parameter set.

use crate::bench::BenchmarkKind;
use crate::params::WorkloadParams;

/// A symbolic quantity from Table 2.
#[derive(Debug, Clone, Copy)]
pub enum SyncQuantity {
    /// A literal constant.
    Const(u64),
    /// The total number of WGs.
    G,
    /// WGs per cluster.
    L,
    /// Number of clusters.
    GOverL,
    /// A parameter-dependent constant with a label (e.g. bucket count).
    Derived(&'static str, fn(&WorkloadParams) -> u64),
}

impl SyncQuantity {
    /// Evaluates the quantity for concrete parameters.
    pub fn eval(&self, params: &WorkloadParams) -> u64 {
        match self {
            SyncQuantity::Const(v) => *v,
            SyncQuantity::G => params.num_wgs,
            SyncQuantity::L => params.wgs_per_cluster,
            SyncQuantity::GOverL => params.num_clusters(),
            SyncQuantity::Derived(_, f) => f(params),
        }
    }
}

impl std::fmt::Display for SyncQuantity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncQuantity::Const(v) => write!(f, "{v}"),
            SyncQuantity::G => write!(f, "G"),
            SyncQuantity::L => write!(f, "L"),
            SyncQuantity::GOverL => write!(f, "G/L"),
            SyncQuantity::Derived(label, _) => write!(f, "{label}"),
        }
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, Copy)]
pub struct BenchCharacteristics {
    /// Work-items per sync variable (always a whole WG's worth: `n`).
    pub granularity: &'static str,
    /// Number of sync variables.
    pub sync_vars: SyncQuantity,
    /// Conditions per sync variable.
    pub conds_per_var: SyncQuantity,
    /// Waiters per condition.
    pub waiters_per_cond: SyncQuantity,
    /// Updates per sync variable until the condition is met.
    pub updates_until_met: SyncQuantity,
}

fn buckets(params: &WorkloadParams) -> u64 {
    (params.num_clusters() * 2).max(4)
}

fn accounts(_params: &WorkloadParams) -> u64 {
    crate::apps::NUM_ACCOUNTS
}

impl BenchmarkKind {
    /// The Table 2 row for this benchmark.
    pub fn characteristics(&self) -> BenchCharacteristics {
        use BenchmarkKind::*;
        use SyncQuantity::*;
        let (sync_vars, conds, waiters, updates) = match self {
            SpinMutexGlobal | SpinMutexBackoffGlobal => (Const(1), Const(1), G, Const(2)),
            FaMutexGlobal => (Const(1), G, Const(1), Const(1)),
            SleepMutexGlobal | SleepMutexLocal => (G, Const(1), Const(1), Const(1)),
            TreeBarrier | TreeBarrierExchange => (GOverL, Const(1), L, L),
            LfTreeBarrier | LfTreeBarrierExchange => (G, Const(1), Const(1), Const(1)),
            SpinMutexLocal | SpinMutexBackoffLocal => (GOverL, Const(1), L, Const(2)),
            FaMutexLocal => (GOverL, L, Const(1), Const(1)),
            HashTable => (Derived("2·G/L", buckets), Const(1), G, Const(2)),
            BankAccount => (Derived("A", accounts), Const(1), G, Const(2)),
            Pipeline => (G, Const(1), Const(1), Const(1)),
            ReaderWriter => (Const(2), Const(1), G, Const(2)),
        };
        BenchCharacteristics {
            granularity: "n",
            sync_vars,
            conds_per_var: conds,
            waiters_per_cond: waiters,
            updates_until_met: updates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_spm_g_row() {
        let c = BenchmarkKind::SpinMutexGlobal.characteristics();
        let p = WorkloadParams::isca2020();
        assert_eq!(c.sync_vars.eval(&p), 1);
        assert_eq!(c.conds_per_var.eval(&p), 1);
        assert_eq!(c.waiters_per_cond.eval(&p), 80);
        assert_eq!(c.updates_until_met.eval(&p), 2);
        assert_eq!(c.waiters_per_cond.to_string(), "G");
    }

    #[test]
    fn table2_fam_g_row() {
        let c = BenchmarkKind::FaMutexGlobal.characteristics();
        assert_eq!(c.sync_vars.to_string(), "1");
        assert_eq!(c.conds_per_var.to_string(), "G");
        assert_eq!(c.waiters_per_cond.to_string(), "1");
    }

    #[test]
    fn table2_tb_row() {
        let c = BenchmarkKind::TreeBarrier.characteristics();
        let p = WorkloadParams::isca2020();
        assert_eq!(c.sync_vars.to_string(), "G/L");
        assert_eq!(c.sync_vars.eval(&p), 8);
        assert_eq!(c.waiters_per_cond.eval(&p), 10);
        assert_eq!(c.updates_until_met.eval(&p), 10);
    }

    #[test]
    fn table2_decentralized_rows_are_one_one_one() {
        for kind in [
            BenchmarkKind::SleepMutexGlobal,
            BenchmarkKind::SleepMutexLocal,
            BenchmarkKind::LfTreeBarrier,
            BenchmarkKind::LfTreeBarrierExchange,
        ] {
            let c = kind.characteristics();
            let p = WorkloadParams::isca2020();
            assert_eq!(c.sync_vars.eval(&p), 80, "{kind}");
            assert_eq!(c.conds_per_var.eval(&p), 1, "{kind}");
            assert_eq!(c.waiters_per_cond.eval(&p), 1, "{kind}");
        }
    }

    #[test]
    fn derived_quantities_render_and_eval() {
        let c = BenchmarkKind::HashTable.characteristics();
        let p = WorkloadParams::isca2020();
        assert_eq!(c.sync_vars.to_string(), "2·G/L");
        assert_eq!(c.sync_vars.eval(&p), 16);
    }
}
