//! Fig 5: work-group context sizes.
//!
//! The context a WG saves on a switch is its vector registers, LDS
//! allocation, and per-wavefront scalar state; the paper reports 2–10 KB
//! across the suite. Sizes derive from each benchmark's resource
//! declaration and the baseline 64-wide SIMDs.

use crate::bench::BenchmarkKind;

/// The baseline SIMD width the context model assumes (Table 1).
pub const SIMD_WIDTH: usize = 64;

/// Context size in bytes for one benchmark's WGs.
pub fn context_bytes(kind: BenchmarkKind) -> u64 {
    kind.resources().context_bytes(SIMD_WIDTH)
}

/// Context size in KB.
pub fn context_kb(kind: BenchmarkKind) -> f64 {
    context_bytes(kind) as f64 / 1024.0
}

/// The Fig 5 series: `(abbreviation, context KB)` for every benchmark.
pub fn fig5_series() -> Vec<(&'static str, f64)> {
    BenchmarkKind::all()
        .iter()
        .map(|k| (k.abbreviation(), context_kb(*k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contexts_in_paper_range() {
        for (name, kb) in fig5_series() {
            assert!((2.0..=10.0).contains(&kb), "{name}: {kb} KB");
        }
    }

    #[test]
    fn exchange_barrier_has_largest_context() {
        let tbex = context_kb(BenchmarkKind::TreeBarrierExchange);
        let spm = context_kb(BenchmarkKind::SpinMutexGlobal);
        assert!(tbex > spm * 2.0, "TBEX {tbex} vs SPM {spm}");
    }

    #[test]
    fn series_covers_whole_suite() {
        assert_eq!(fig5_series().len(), 16);
    }
}
