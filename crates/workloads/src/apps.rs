//! Application benchmarks: the lock-based hash table and bank account
//! (Table 2's caption lists them alongside HeteroSync).
//!
//! Both wrap the Table 2 mutexes around realistic critical sections:
//! hash-table inserts behind per-bucket locks, and two-account transfers
//! behind ordered per-account locks (ordering prevents lock-cycle
//! deadlock). Their post-conditions are strong: the table must hold exactly
//! every insert, and money must be conserved.

use awg_gpu::SyncStyle;
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Reg, Special};

use crate::bench::ProgramPieces;
use crate::checks::Check;
use crate::params::WorkloadParams;
use crate::sync_emit::{acquire_test_and_set, release_test_and_set};

mod regs {
    use awg_isa::Reg;
    pub const SCRATCH: Reg = Reg::R0;
    pub const WG_ID: Reg = Reg::R1;
    pub const ITER: Reg = Reg::R3;
    pub const KEY: Reg = Reg::R5;
    pub const BUCKET: Reg = Reg::R6;
    pub const COUNT: Reg = Reg::R7;
    pub const SLOT: Reg = Reg::R8;
    pub const TMP: Reg = Reg::R9;
    pub const FROM: Reg = Reg::R13;
    pub const TO: Reg = Reg::R14;
    pub const LO: Reg = Reg::R15;
    pub const HI: Reg = Reg::R16;
    pub const AMOUNT: Reg = Reg::R17;
    pub const BAL: Reg = Reg::R18;
    pub const HASH: Reg = Reg::R19;
}

/// Initial balance of every account.
pub const INITIAL_BALANCE: i64 = 1_000;

/// Number of accounts in the bank-account benchmark.
pub const NUM_ACCOUNTS: u64 = 16;

/// Mixes WG id, iteration, and seed into a positive pseudo-random value.
fn emit_hash(b: &mut ProgramBuilder, seed: u64, dst: Reg) {
    b.alu(AluOp::Mul, dst, regs::WG_ID, 2_654_435_761i64);
    b.alu(AluOp::Mul, regs::SCRATCH, regs::ITER, 40_503i64);
    b.alu(AluOp::Add, dst, dst, Operand::Reg(regs::SCRATCH));
    b.alu(AluOp::Add, dst, dst, (seed & 0xFFFF_FFFF) as i64);
    b.alu(AluOp::Mul, dst, dst, 0x9E37_79B9i64);
    b.alu(AluOp::And, dst, dst, 0x7FFF_FFFFi64);
}

/// Hash table: per-bucket test-and-set locks around `count++; data[count] =
/// key` inserts.
pub fn hash_table(params: &WorkloadParams, style: SyncStyle) -> ProgramPieces {
    params.assert_valid();
    let buckets = (params.num_clusters() * 2).max(4);
    let capacity = params.total_episodes(); // worst case: all keys collide
    let mut space = awg_mem::AddressSpace::new();
    let locks = space.alloc_sync_array("ht_locks", buckets, true);
    let counts = space.alloc_sync_array("ht_counts", buckets, true);
    let data = space.alloc_sync_array("ht_data", buckets * capacity, false);

    let mut b = ProgramBuilder::new("HashTable");
    b.special(regs::WG_ID, Special::WgId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);

    emit_hash(&mut b, params.seed, regs::KEY);
    // Keys must be non-zero so "slot written" is checkable.
    b.alu(AluOp::Or, regs::KEY, regs::KEY, 1i64);
    b.alu(AluOp::Rem, regs::BUCKET, regs::KEY, buckets as i64);

    acquire_test_and_set(
        &mut b,
        style,
        Mem::indexed(locks.base(), regs::BUCKET, locks.stride_bytes()),
        regs::SCRATCH,
        None,
    );
    // count = counts[bucket]; data[bucket*capacity + count] = key; count++
    b.ld(
        regs::COUNT,
        Mem::indexed(counts.base(), regs::BUCKET, counts.stride_bytes()),
    );
    b.alu(AluOp::Mul, regs::SLOT, regs::BUCKET, capacity as i64);
    b.alu(
        AluOp::Add,
        regs::SLOT,
        regs::SLOT,
        Operand::Reg(regs::COUNT),
    );
    b.st(
        Mem::indexed(data.base(), regs::SLOT, data.stride_bytes()),
        regs::KEY,
    );
    b.alu(AluOp::Add, regs::COUNT, regs::COUNT, 1i64);
    b.st(
        Mem::indexed(counts.base(), regs::BUCKET, counts.stride_bytes()),
        regs::COUNT,
    );
    if params.cs_compute > 0 {
        b.compute(params.cs_compute);
    }
    release_test_and_set(
        &mut b,
        Mem::indexed(locks.base(), regs::BUCKET, locks.stride_bytes()),
        regs::TMP,
    );

    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(
        Cond::Lt,
        regs::ITER,
        Operand::Imm(params.iterations as i64),
        head,
    );
    b.halt();

    ProgramPieces {
        program: b.build().expect("hash table verifies"),
        init: Vec::new(),
        checks: vec![
            Check::SumEquals {
                base: counts.base(),
                count: buckets,
                stride: counts.stride_bytes(),
                expect: params.total_episodes() as i64,
                label: "total inserts recorded",
            },
            Check::SumEquals {
                base: locks.base(),
                count: buckets,
                stride: locks.stride_bytes(),
                expect: 0,
                label: "all bucket locks released",
            },
        ],
    }
}

/// Bank account: ordered two-lock transfers between random accounts; the
/// total balance is conserved iff the locking discipline worked.
pub fn bank_account(params: &WorkloadParams, style: SyncStyle) -> ProgramPieces {
    params.assert_valid();
    let accounts = NUM_ACCOUNTS;
    let mut space = awg_mem::AddressSpace::new();
    let locks = space.alloc_sync_array("bank_locks", accounts, true);
    let balances = space.alloc_sync_array("bank_balances", accounts, true);
    let init: Vec<(u64, i64)> = (0..accounts)
        .map(|a| (balances.at(a), INITIAL_BALANCE))
        .collect();

    let mut b = ProgramBuilder::new("BankAccount");
    b.special(regs::WG_ID, Special::WgId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);

    emit_hash(&mut b, params.seed ^ 0xBA2C, regs::HASH);
    // from = h mod A; to = (from + 1 + (h>>8) mod (A-1)) mod A  (to != from)
    b.alu(AluOp::Rem, regs::FROM, regs::HASH, accounts as i64);
    b.alu(AluOp::Shr, regs::TMP, regs::HASH, 8i64);
    b.alu(AluOp::Rem, regs::TMP, regs::TMP, (accounts - 1) as i64);
    b.alu(AluOp::Add, regs::TO, regs::FROM, 1i64);
    b.alu(AluOp::Add, regs::TO, regs::TO, Operand::Reg(regs::TMP));
    b.alu(AluOp::Rem, regs::TO, regs::TO, accounts as i64);
    // amount = 1 + (h>>16) mod 10
    b.alu(AluOp::Shr, regs::AMOUNT, regs::HASH, 16i64);
    b.alu(AluOp::Rem, regs::AMOUNT, regs::AMOUNT, 10i64);
    b.alu(AluOp::Add, regs::AMOUNT, regs::AMOUNT, 1i64);
    // Ordered locking: lo = min(from,to), hi = max(from,to).
    b.mov(regs::LO, regs::FROM);
    b.alu(AluOp::Min, regs::LO, regs::LO, Operand::Reg(regs::TO));
    b.mov(regs::HI, regs::FROM);
    b.alu(AluOp::Max, regs::HI, regs::HI, Operand::Reg(regs::TO));

    acquire_test_and_set(
        &mut b,
        style,
        Mem::indexed(locks.base(), regs::LO, locks.stride_bytes()),
        regs::SCRATCH,
        None,
    );
    acquire_test_and_set(
        &mut b,
        style,
        Mem::indexed(locks.base(), regs::HI, locks.stride_bytes()),
        regs::SCRATCH,
        None,
    );
    // balances[from] -= amount; balances[to] += amount (plain ld/st).
    b.ld(
        regs::BAL,
        Mem::indexed(balances.base(), regs::FROM, balances.stride_bytes()),
    );
    b.alu(AluOp::Sub, regs::BAL, regs::BAL, Operand::Reg(regs::AMOUNT));
    b.st(
        Mem::indexed(balances.base(), regs::FROM, balances.stride_bytes()),
        regs::BAL,
    );
    b.ld(
        regs::BAL,
        Mem::indexed(balances.base(), regs::TO, balances.stride_bytes()),
    );
    b.alu(AluOp::Add, regs::BAL, regs::BAL, Operand::Reg(regs::AMOUNT));
    b.st(
        Mem::indexed(balances.base(), regs::TO, balances.stride_bytes()),
        regs::BAL,
    );
    if params.cs_compute > 0 {
        b.compute(params.cs_compute);
    }
    release_test_and_set(
        &mut b,
        Mem::indexed(locks.base(), regs::HI, locks.stride_bytes()),
        regs::TMP,
    );
    release_test_and_set(
        &mut b,
        Mem::indexed(locks.base(), regs::LO, locks.stride_bytes()),
        regs::TMP,
    );

    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(
        Cond::Lt,
        regs::ITER,
        Operand::Imm(params.iterations as i64),
        head,
    );
    b.halt();

    ProgramPieces {
        program: b.build().expect("bank account verifies"),
        init,
        checks: vec![
            Check::SumEquals {
                base: balances.base(),
                count: accounts,
                stride: balances.stride_bytes(),
                expect: accounts as i64 * INITIAL_BALANCE,
                label: "money conserved",
            },
            Check::SumEquals {
                base: locks.base(),
                count: accounts,
                stride: locks.stride_bytes(),
                expect: 0,
                label: "all account locks released",
            },
        ],
    }
}

/// Work-items produced per pipeline stage iteration.
pub const PIPELINE_TOKENS: i64 = 3;

/// Pipeline: point-to-point producer/consumer chaining across WGs — the
/// persistent-RNN-style dependence pattern the paper's introduction
/// motivates (each timestep's WG consumes the previous WG's output).
///
/// WG `m` waits for WG `m-1`'s stage flag to reach iteration `k+1`, folds
/// the predecessor's output into its own accumulator, then publishes its
/// own flag. Table 2 shape: `G` sync variables, one condition and one
/// waiter each, one update until met — like the decentralized primitives,
/// but with a serial critical path the length of the whole grid.
pub fn pipeline(params: &WorkloadParams, style: SyncStyle) -> ProgramPieces {
    params.assert_valid();
    let g = params.num_wgs;
    let mut space = awg_mem::AddressSpace::new();
    let flags = space.alloc_sync_array("pipe_flags", g, true);
    let credits = space.alloc_sync_array("pipe_credits", g, true);
    let values = space.alloc_sync_array("pipe_values", g, true);

    let mut b = ProgramBuilder::new("Pipeline");
    b.special(regs::WG_ID, Special::WgId);
    b.li(regs::ITER, 0);
    let head = b.new_label();
    b.bind(head);
    // KEY = iter + 1 (monotonic stage flag value).
    b.alu(AluOp::Add, regs::KEY, regs::ITER, 1i64);

    // Every WG but the first waits for its predecessor's flag, reads the
    // predecessor's output, and returns the credit (which is what lets the
    // predecessor overwrite its single-buffered value slot).
    let first = b.new_label();
    let produce = b.new_label();
    b.br(Cond::Eq, regs::WG_ID, Operand::Imm(0), first);
    b.alu(AluOp::Sub, regs::BUCKET, regs::WG_ID, 1i64);
    crate::sync_emit::wait_until_equals(
        &mut b,
        style,
        Mem::indexed(flags.base(), regs::BUCKET, flags.stride_bytes()),
        regs::KEY,
        regs::COUNT,
        None,
    );
    b.ld(
        regs::SLOT,
        Mem::indexed(values.base(), regs::BUCKET, values.stride_bytes()),
    );
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(credits.base(), regs::BUCKET, credits.stride_bytes()),
        regs::KEY,
    );
    b.jmp(produce);
    b.bind(first);
    b.li(regs::SLOT, 0);
    b.bind(produce);
    // Back-pressure: before overwriting my value slot (iterations ≥ 1), my
    // consumer must have taken the previous iteration's value. The last
    // stage has no consumer.
    let no_credit_wait = b.new_label();
    b.br(Cond::Eq, regs::ITER, Operand::Imm(0), no_credit_wait);
    b.br(
        Cond::Eq,
        regs::WG_ID,
        Operand::Imm(g as i64 - 1),
        no_credit_wait,
    );
    crate::sync_emit::wait_until_equals(
        &mut b,
        style,
        Mem::indexed(credits.base(), regs::WG_ID, credits.stride_bytes()),
        regs::ITER,
        regs::COUNT,
        None,
    );
    b.bind(no_credit_wait);
    if params.cs_compute > 0 {
        b.compute(params.cs_compute);
    }
    b.ld(
        regs::TMP,
        Mem::indexed(values.base(), regs::WG_ID, values.stride_bytes()),
    );
    b.alu(AluOp::Add, regs::TMP, regs::TMP, Operand::Reg(regs::SLOT));
    b.alu(AluOp::Add, regs::TMP, regs::TMP, PIPELINE_TOKENS);
    b.st(
        Mem::indexed(values.base(), regs::WG_ID, values.stride_bytes()),
        regs::TMP,
    );
    // Publish this stage (atomic: the successor's monitored variable).
    b.atom_exch(
        regs::SCRATCH,
        Mem::indexed(flags.base(), regs::WG_ID, flags.stride_bytes()),
        regs::KEY,
    );

    b.add(regs::ITER, regs::ITER, 1i64);
    b.br(
        Cond::Lt,
        regs::ITER,
        Operand::Imm(params.iterations as i64),
        head,
    );
    b.halt();

    // Exact expected accumulators, computed by the same recurrence the
    // kernel implements: stage m's iteration k consumes the predecessor's
    // value *after* the predecessor completed iteration k (the flag/credit
    // handshake guarantees exactly this interleaving).
    let iters = params.iterations as i64;
    let mut prev = vec![0i64; g as usize];
    for _k in 0..iters {
        let mut cur = prev.clone();
        for m in 0..g as usize {
            let upstream = if m == 0 { 0 } else { cur[m - 1] };
            // Wrapping, exactly like the kernel ALU (the accumulators grow
            // combinatorially with the iteration count).
            cur[m] = prev[m].wrapping_add(upstream).wrapping_add(PIPELINE_TOKENS);
        }
        prev = cur;
    }
    let mut checks = vec![Check::SumEquals {
        base: flags.base(),
        count: g,
        stride: flags.stride_bytes(),
        expect: g as i64 * iters,
        label: "all stage flags at final iteration",
    }];
    for (m, &expect) in prev.iter().enumerate() {
        checks.push(Check::WordEquals {
            addr: values.at(m as u64),
            expect,
            label: "pipeline stage accumulator",
        });
    }
    ProgramPieces {
        program: b.build().expect("pipeline verifies"),
        init: Vec::new(),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_isa::Machine;

    fn run_functional(pieces: &ProgramPieces, params: &WorkloadParams) {
        let mut m = Machine::new(
            pieces.program.clone(),
            params.num_wgs,
            params.wgs_per_cluster,
        );
        for &(addr, v) in &pieces.init {
            m.mem_mut().store(addr, v);
        }
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
        crate::checks::validate(&pieces.checks, m.mem())
            .unwrap_or_else(|e| panic!("{}: {e}", pieces.program.name()));
    }

    fn all_styles() -> [SyncStyle; 3] {
        [
            SyncStyle::Busy,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ]
    }

    #[test]
    fn hash_table_inserts_exactly_once_each() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            run_functional(&hash_table(&params, style), &params);
        }
    }

    #[test]
    fn bank_conserves_money_all_styles() {
        let params = WorkloadParams::smoke();
        for style in all_styles() {
            run_functional(&bank_account(&params, style), &params);
        }
    }

    #[test]
    fn bank_larger_scale_functional() {
        let params = WorkloadParams {
            num_wgs: 32,
            wgs_per_cluster: 8,
            iterations: 4,
            ..WorkloadParams::smoke()
        };
        run_functional(&bank_account(&params, SyncStyle::Busy), &params);
    }

    #[test]
    fn transfers_actually_move_money() {
        // Money conservation alone would pass a no-op kernel; make sure some
        // balance differs from the initial value.
        let params = WorkloadParams::smoke();
        let pieces = bank_account(&params, SyncStyle::Busy);
        let mut m = Machine::new(
            pieces.program.clone(),
            params.num_wgs,
            params.wgs_per_cluster,
        );
        for &(addr, v) in &pieces.init {
            m.mem_mut().store(addr, v);
        }
        m.run(50_000_000).unwrap();
        let moved =
            (0..NUM_ACCOUNTS).any(|a| m.mem().load(pieces.init[a as usize].0) != INITIAL_BALANCE);
        assert!(moved, "no transfer changed any balance");
    }
}
