//! Functional (untimed) execution of kernel programs.
//!
//! The timing simulator lives in `awg-gpu`; this machine exists so that
//! workload generators can unit-test the *correctness* of their
//! synchronization algorithms in isolation: every WG is stepped one
//! instruction at a time in round-robin order (a fair scheduler with all WGs
//! resident), so a correct algorithm must terminate, and its post-conditions
//! (lock counts, barrier phases, account balances) can be asserted against
//! the functional memory.

use std::fmt;

use awg_mem::{atomic, AtomicRequest, Backing};

use crate::inst::{Inst, Mem, Operand, Special};
use crate::program::Program;
use crate::reg::{Reg, RegFile};

/// Execution state of one WG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgOutcome {
    /// Still executing.
    Running,
    /// Reached `halt`.
    Halted,
}

/// Why functional execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionalError {
    /// The fuel budget ran out with WGs still running — for a correct
    /// program under fair scheduling this indicates livelock/deadlock.
    OutOfFuel {
        /// Instructions executed before giving up.
        steps: u64,
        /// Number of WGs still running.
        unfinished: usize,
        /// `(wg, pc, disassembled instruction)` for each stuck WG (capped
        /// at eight entries) — the livelock diagnosis.
        stuck_at: Vec<(u64, usize, String)>,
    },
}

impl fmt::Display for FunctionalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalError::OutOfFuel {
                steps,
                unfinished,
                stuck_at,
            } => {
                write!(
                    f,
                    "out of fuel after {steps} steps with {unfinished} WGs unfinished"
                )?;
                for (wg, pc, inst) in stuck_at {
                    write!(f, "; wg{wg} at pc {pc}: {inst}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FunctionalError {}

#[derive(Debug, Clone)]
struct WgCtx {
    id: u64,
    pc: usize,
    regs: RegFile,
    halted: bool,
}

/// A fair round-robin functional machine executing one program across many
/// WGs.
///
/// # Example
///
/// ```
/// use awg_isa::{Machine, ProgramBuilder, Reg, Special};
/// use awg_mem::AtomicOp;
///
/// // Every WG atomically adds its id+1 to a counter at address 64.
/// let mut b = ProgramBuilder::new("sum");
/// b.special(Reg::R1, Special::WgId);
/// b.add(Reg::R1, Reg::R1, 1i64);
/// b.atom(AtomicOp::Add, Reg::R0, 64u64, Reg::R1);
/// b.halt();
/// let p = b.build().unwrap();
///
/// let mut m = Machine::new(p, 4, 4);
/// m.run(10_000).unwrap();
/// assert_eq!(m.mem().load(64), 1 + 2 + 3 + 4);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    mem: Backing,
    wgs: Vec<WgCtx>,
    num_wgs: u64,
    wgs_per_cluster: u64,
    steps: u64,
}

impl Machine {
    /// Creates a machine running `program` on `num_wgs` WGs with the given
    /// cluster width (the paper's `L`).
    ///
    /// # Panics
    ///
    /// Panics if `num_wgs == 0` or `wgs_per_cluster == 0`, or if the program
    /// fails verification.
    pub fn new(program: Program, num_wgs: u64, wgs_per_cluster: u64) -> Self {
        assert!(num_wgs > 0, "need at least one WG");
        assert!(wgs_per_cluster > 0, "cluster width must be positive");
        program.verify().expect("program must verify");
        let wgs = (0..num_wgs)
            .map(|id| WgCtx {
                id,
                pc: 0,
                regs: RegFile::new(),
                halted: false,
            })
            .collect();
        Machine {
            program,
            mem: Backing::new(),
            wgs,
            num_wgs,
            wgs_per_cluster,
            steps: 0,
        }
    }

    /// The functional memory (for post-condition assertions).
    pub fn mem(&self) -> &Backing {
        &self.mem
    }

    /// Mutable access to memory, e.g. for initializing workload state before
    /// running.
    pub fn mem_mut(&mut self) -> &mut Backing {
        &mut self.mem
    }

    /// Reads a register of a WG (debugging / assertions).
    pub fn wg_reg(&self, wg: u64, reg: Reg) -> i64 {
        self.wgs[wg as usize].regs.get(reg)
    }

    /// Execution state of a WG.
    pub fn wg_outcome(&self, wg: u64) -> WgOutcome {
        if self.wgs[wg as usize].halted {
            WgOutcome::Halted
        } else {
            WgOutcome::Running
        }
    }

    /// Total instructions executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn operand(regs: &RegFile, op: Operand) -> i64 {
        match op {
            Operand::Imm(v) => v,
            Operand::Reg(r) => regs.get(r),
        }
    }

    fn resolve(regs: &RegFile, mem: Mem) -> u64 {
        match mem.index {
            None => mem.base,
            Some(r) => mem
                .base
                .wrapping_add((regs.get(r) as u64).wrapping_mul(mem.scale)),
        }
    }

    fn special_value(&self, wg: &WgCtx, s: Special) -> i64 {
        match s {
            Special::WgId => wg.id as i64,
            Special::NumWgs => self.num_wgs as i64,
            Special::WgsPerCluster => self.wgs_per_cluster as i64,
            Special::ClusterId => (wg.id / self.wgs_per_cluster) as i64,
            Special::NumClusters => self.num_wgs.div_ceil(self.wgs_per_cluster) as i64,
        }
    }

    /// Executes one instruction of WG `i`. Returns `true` if it halted.
    fn step_wg(&mut self, i: usize) -> bool {
        let pc = self.wgs[i].pc;
        let inst = *self.program.inst(pc);
        self.steps += 1;
        let mut next_pc = pc + 1;
        match inst {
            Inst::Compute(_) | Inst::Barrier => {}
            Inst::Sleep(_) | Inst::Wait { .. } => {
                // Timing-only instructions: functional no-ops.
            }
            Inst::Halt => {
                self.wgs[i].halted = true;
                return true;
            }
            Inst::Li(d, v) => self.wgs[i].regs.set(d, v),
            Inst::Mov(d, s) => {
                let v = self.wgs[i].regs.get(s);
                self.wgs[i].regs.set(d, v);
            }
            Inst::Alu(op, d, s, o) => {
                let a = self.wgs[i].regs.get(s);
                let b = Self::operand(&self.wgs[i].regs, o);
                self.wgs[i].regs.set(d, op.apply(a, b));
            }
            Inst::Jmp(l) => next_pc = self.program.target(l),
            Inst::Br(c, r, o, l) => {
                let a = self.wgs[i].regs.get(r);
                let b = Self::operand(&self.wgs[i].regs, o);
                if c.holds(a, b) {
                    next_pc = self.program.target(l);
                }
            }
            Inst::Ld(d, m) => {
                let addr = Self::resolve(&self.wgs[i].regs, m);
                let v = self.mem.load(addr);
                self.wgs[i].regs.set(d, v);
            }
            Inst::St(m, o) => {
                let addr = Self::resolve(&self.wgs[i].regs, m);
                let v = Self::operand(&self.wgs[i].regs, o);
                self.mem.store(addr, v);
            }
            Inst::Atom {
                op,
                dst,
                mem,
                operand,
                expected,
            } => {
                let addr = Self::resolve(&self.wgs[i].regs, mem);
                let operand = Self::operand(&self.wgs[i].regs, operand);
                let expected = expected.map(|e| Self::operand(&self.wgs[i].regs, e));
                let result = atomic::execute(
                    &mut self.mem,
                    AtomicRequest {
                        op,
                        addr,
                        operand,
                        expected,
                    },
                );
                self.wgs[i].regs.set(dst, result.old);
            }
            Inst::Special(d, s) => {
                let v = self.special_value(&self.wgs[i], s);
                self.wgs[i].regs.set(d, v);
            }
        }
        self.wgs[i].pc = next_pc;
        false
    }

    /// Runs all WGs round-robin until every WG halts or `fuel` instructions
    /// have executed.
    ///
    /// # Errors
    ///
    /// Returns [`FunctionalError::OutOfFuel`] when the budget is exhausted —
    /// for a correct synchronization algorithm this means livelock.
    pub fn run(&mut self, fuel: u64) -> Result<u64, FunctionalError> {
        let start = self.steps;
        loop {
            let mut any_running = false;
            for i in 0..self.wgs.len() {
                if self.wgs[i].halted {
                    continue;
                }
                any_running = true;
                self.step_wg(i);
                if self.steps - start >= fuel {
                    let unfinished = self.wgs.iter().filter(|w| !w.halted).count();
                    if unfinished > 0 {
                        let stuck_at = self
                            .wgs
                            .iter()
                            .filter(|w| !w.halted)
                            .take(8)
                            .map(|w| (w.id, w.pc, self.program.inst(w.pc).to_string()))
                            .collect();
                        return Err(FunctionalError::OutOfFuel {
                            steps: self.steps - start,
                            unfinished,
                            stuck_at,
                        });
                    }
                }
            }
            if !any_running {
                return Ok(self.steps - start);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{AluOp, Cond};

    #[test]
    fn single_wg_arithmetic() {
        let mut b = ProgramBuilder::new("arith");
        b.li(Reg::R1, 6);
        b.alu(AluOp::Mul, Reg::R2, Reg::R1, 7i64);
        b.st(64u64, Reg::R2);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 1, 1);
        m.run(100).unwrap();
        assert_eq!(m.mem().load(64), 42);
        assert_eq!(m.wg_outcome(0), WgOutcome::Halted);
    }

    #[test]
    fn specials_expose_launch_env() {
        let mut b = ProgramBuilder::new("spec");
        b.special(Reg::R1, Special::WgId);
        b.special(Reg::R2, Special::NumWgs);
        b.special(Reg::R3, Special::ClusterId);
        b.special(Reg::R4, Special::NumClusters);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 6, 2);
        m.run(1000).unwrap();
        assert_eq!(m.wg_reg(5, Reg::R1), 5);
        assert_eq!(m.wg_reg(5, Reg::R2), 6);
        assert_eq!(m.wg_reg(5, Reg::R3), 2);
        assert_eq!(m.wg_reg(0, Reg::R4), 3);
    }

    #[test]
    fn spin_lock_serializes_counter_updates() {
        // Classic test-and-set mutex around a non-atomic read-modify-write.
        let lock = 64u64;
        let counter = 128u64;
        let mut b = ProgramBuilder::new("spm");
        let retry = b.new_label();
        b.bind(retry);
        b.atom_exch(Reg::R0, lock, 1i64);
        b.br(Cond::Ne, Reg::R0, Operand::Imm(0), retry);
        // critical section: counter++ via plain ld/st
        b.ld(Reg::R1, counter);
        b.add(Reg::R1, Reg::R1, 1i64);
        b.st(counter, Reg::R1);
        b.atom_exch(Reg::R0, lock, 0i64); // release
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 16, 4);
        m.run(1_000_000).unwrap();
        assert_eq!(m.mem().load(counter), 16);
        assert_eq!(m.mem().load(lock), 0);
    }

    #[test]
    fn ticket_lock_orders_all_wgs() {
        let tail = 64u64;
        let now_serving = 128u64;
        let counter = 192u64;
        let mut b = ProgramBuilder::new("fam");
        b.atom_add(Reg::R1, tail, 1i64); // my ticket
        let spin = b.new_label();
        b.bind(spin);
        b.atom_load(Reg::R2, now_serving);
        b.br(Cond::Ne, Reg::R2, Operand::Reg(Reg::R1), spin);
        b.ld(Reg::R3, counter);
        b.add(Reg::R3, Reg::R3, 1i64);
        b.st(counter, Reg::R3);
        b.atom_add(Reg::R0, now_serving, 1i64);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 8, 4);
        m.run(1_000_000).unwrap();
        assert_eq!(m.mem().load(counter), 8);
        assert_eq!(m.mem().load(now_serving), 8);
    }

    #[test]
    fn sense_reversing_barrier_completes() {
        // count at 64, sense at 128; every WG arrives once.
        let count = 64u64;
        let sense = 128u64;
        let n = 8i64;
        let mut b = ProgramBuilder::new("bar");
        b.atom_add(Reg::R1, count, 1i64);
        let last = b.new_label();
        let spin = b.new_label();
        let done = b.new_label();
        b.br(Cond::Eq, Reg::R1, Operand::Imm(n - 1), last);
        b.bind(spin);
        b.atom_load(Reg::R2, sense);
        b.br(Cond::Eq, Reg::R2, Operand::Imm(0), spin);
        b.jmp(done);
        b.bind(last);
        b.atom_exch(Reg::R0, sense, 1i64);
        b.bind(done);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), n as u64, 4);
        m.run(1_000_000).unwrap();
        assert_eq!(m.mem().load(count), n);
        assert_eq!(m.mem().load(sense), 1);
    }

    #[test]
    fn livelock_reports_out_of_fuel() {
        let mut b = ProgramBuilder::new("hang");
        let spin = b.new_label();
        b.bind(spin);
        b.atom_load(Reg::R0, 64u64);
        b.br(Cond::Eq, Reg::R0, Operand::Imm(0), spin); // never satisfied
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 2, 2);
        let err = m.run(10_000).unwrap_err();
        match err {
            FunctionalError::OutOfFuel {
                unfinished,
                ref stuck_at,
                ..
            } => {
                assert_eq!(unfinished, 2);
                assert_eq!(stuck_at.len(), 2);
                assert!(
                    err.to_string().contains("atom_ld") || err.to_string().contains("bne"),
                    "diagnosis should name the spin: {err}"
                );
            }
        }
    }

    #[test]
    fn waiting_atomics_are_functionally_transparent() {
        // compare-and-wait behaves like atomicLoad functionally; the machine
        // keeps re-executing the loop (fair scheduling).
        let flag = 64u64;
        let mut b = ProgramBuilder::new("cmpwait");
        b.special(Reg::R1, Special::WgId);
        let consumer_spin = b.new_label();
        let producer = b.new_label();
        let done = b.new_label();
        b.br(Cond::Eq, Reg::R1, Operand::Imm(0), producer);
        b.bind(consumer_spin);
        b.atom_cmp_wait(Reg::R2, flag, 1i64);
        b.br(Cond::Ne, Reg::R2, Operand::Imm(1), consumer_spin);
        b.jmp(done);
        b.bind(producer);
        b.compute(10);
        b.atom_exch(Reg::R0, flag, 1i64);
        b.bind(done);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 4, 4);
        m.run(100_000).unwrap();
        for wg in 0..4 {
            assert_eq!(m.wg_outcome(wg), WgOutcome::Halted);
        }
    }

    #[test]
    fn mem_init_before_run() {
        let mut b = ProgramBuilder::new("rd");
        b.ld(Reg::R1, 64u64);
        b.st(128u64, Reg::R1);
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), 1, 1);
        m.mem_mut().store(64, 77);
        m.run(100).unwrap();
        assert_eq!(m.mem().load(128), 77);
    }

    #[test]
    #[should_panic(expected = "at least one WG")]
    fn zero_wgs_rejected() {
        let mut b = ProgramBuilder::new("x");
        b.halt();
        Machine::new(b.build().unwrap(), 0, 1);
    }
}
