//! Programs: verified, label-resolved instruction sequences.

use std::fmt;

use crate::inst::Inst;

/// A branch target. Labels are created and bound by
/// [`crate::ProgramBuilder`]; a built [`Program`] resolves them to
/// instruction indices via [`Program::target`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

impl Label {
    pub(crate) fn new(id: u32) -> Self {
        Label(id)
    }

    /// The label's id (an index into the program's target table).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Creates a label with a raw id, bypassing the builder. Only useful for
    /// constructing instructions outside a builder (tests, display).
    pub fn untracked(id: usize) -> Self {
        Label(id as u32)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Why a program failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    Empty,
    /// A branch references a label that was never bound.
    UnboundLabel(Label),
    /// A bound label points outside the program.
    TargetOutOfRange {
        /// The offending label.
        label: Label,
        /// Its out-of-range target.
        target: usize,
    },
    /// The last instruction can fall off the end of the program.
    FallsOffEnd,
    /// An indexed memory operand has a zero scale (almost certainly a bug).
    ZeroScale {
        /// Index of the offending instruction.
        pc: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "program is empty"),
            VerifyError::UnboundLabel(l) => write!(f, "label {l} is never bound"),
            VerifyError::TargetOutOfRange { label, target } => {
                write!(f, "label {label} targets out-of-range pc {target}")
            }
            VerifyError::FallsOffEnd => {
                write!(
                    f,
                    "last instruction may fall off the end (must be halt or jmp)"
                )
            }
            VerifyError::ZeroScale { pc } => {
                write!(f, "indexed memory operand with zero scale at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A verified kernel program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    targets: Vec<Option<usize>>,
}

impl Program {
    pub(crate) fn from_parts(name: String, insts: Vec<Inst>, targets: Vec<Option<usize>>) -> Self {
        Program {
            name,
            insts,
            targets,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn inst(&self, pc: usize) -> &Inst {
        &self.insts[pc]
    }

    /// All instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label is unbound (verification rejects such programs).
    #[inline]
    pub fn target(&self, label: Label) -> usize {
        self.targets[label.id() as usize].expect("unbound label in verified program")
    }

    /// Statically checks the program: non-empty, all labels bound and in
    /// range, no fall-through off the end, no zero-scale indexed operands.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        if self.insts.is_empty() {
            return Err(VerifyError::Empty);
        }
        let mut used_labels: Vec<Label> = Vec::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Jmp(l) | Inst::Br(_, _, _, l) => used_labels.push(*l),
                Inst::Ld(_, m)
                | Inst::St(m, _)
                | Inst::Atom { mem: m, .. }
                | Inst::Wait { mem: m, .. }
                    if m.index.is_some() && m.scale == 0 =>
                {
                    return Err(VerifyError::ZeroScale { pc });
                }
                _ => {}
            }
        }
        for label in used_labels {
            match self.targets.get(label.id() as usize).copied().flatten() {
                None => return Err(VerifyError::UnboundLabel(label)),
                Some(t) if t >= self.insts.len() => {
                    return Err(VerifyError::TargetOutOfRange { label, target: t })
                }
                Some(_) => {}
            }
        }
        match self.insts.last() {
            Some(Inst::Halt) | Some(Inst::Jmp(_)) => Ok(()),
            _ => Err(VerifyError::FallsOffEnd),
        }
    }

    /// Number of static atomic instructions (plain + waiting).
    pub fn static_atomics(&self) -> usize {
        self.insts
            .iter()
            .filter(|i| matches!(i, Inst::Atom { .. }))
            .count()
    }

    /// Renders the program as annotated assembly.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; program: {}", self.name);
        for (pc, inst) in self.insts.iter().enumerate() {
            // Print label markers for any label bound at this pc.
            for (id, target) in self.targets.iter().enumerate() {
                if *target == Some(pc) {
                    let _ = writeln!(out, "L{id}:");
                }
            }
            let _ = writeln!(out, "  {pc:4}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Operand};
    use crate::reg::Reg;

    fn prog(insts: Vec<Inst>, targets: Vec<Option<usize>>) -> Program {
        Program::from_parts("t".into(), insts, targets)
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(prog(vec![], vec![]).verify(), Err(VerifyError::Empty));
    }

    #[test]
    fn fall_off_end_rejected() {
        let p = prog(vec![Inst::Compute(1)], vec![]);
        assert_eq!(p.verify(), Err(VerifyError::FallsOffEnd));
    }

    #[test]
    fn unbound_label_rejected() {
        let l = Label::untracked(0);
        let p = prog(vec![Inst::Jmp(l), Inst::Halt], vec![None]);
        assert_eq!(p.verify(), Err(VerifyError::UnboundLabel(l)));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let l = Label::untracked(0);
        let p = prog(vec![Inst::Jmp(l), Inst::Halt], vec![Some(9)]);
        assert_eq!(
            p.verify(),
            Err(VerifyError::TargetOutOfRange {
                label: l,
                target: 9
            })
        );
    }

    #[test]
    fn zero_scale_rejected() {
        use crate::inst::Mem;
        let p = prog(
            vec![Inst::Ld(Reg::R0, Mem::indexed(0, Reg::R1, 0)), Inst::Halt],
            vec![],
        );
        assert_eq!(p.verify(), Err(VerifyError::ZeroScale { pc: 0 }));
    }

    #[test]
    fn valid_program_passes() {
        let l = Label::untracked(0);
        let p = prog(
            vec![
                Inst::Li(Reg::R0, 3),
                Inst::Br(Cond::Ne, Reg::R0, Operand::Imm(0), l),
                Inst::Halt,
            ],
            vec![Some(2)],
        );
        assert_eq!(p.verify(), Ok(()));
        assert_eq!(p.target(l), 2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn disassembly_contains_labels_and_insts() {
        let l = Label::untracked(0);
        let p = prog(
            vec![Inst::Li(Reg::R0, 1), Inst::Jmp(l), Inst::Halt],
            vec![Some(0)],
        );
        let asm = p.disassemble();
        assert!(asm.contains("L0:"), "{asm}");
        assert!(asm.contains("li r0, 1"), "{asm}");
        assert!(asm.contains("jmp L0"), "{asm}");
    }

    #[test]
    fn error_messages_render() {
        for e in [
            VerifyError::Empty,
            VerifyError::UnboundLabel(Label::untracked(3)),
            VerifyError::TargetOutOfRange {
                label: Label::untracked(1),
                target: 7,
            },
            VerifyError::FallsOffEnd,
            VerifyError::ZeroScale { pc: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
