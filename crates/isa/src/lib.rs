//! The kernel mini-ISA for the AWG GPU simulator.
//!
//! HeteroSync's inter-work-group synchronization lives in a small set of
//! operations: atomics on global sync variables, intra-WG barriers
//! (`__syncthreads`), sleep instructions (`s_sleep`), plain loads/stores of
//! shared data, and loops around them. This crate defines a register-machine
//! ISA with exactly those operations — including the paper's two proposed
//! instructions:
//!
//! * **waiting atomics** (§IV.D): any [`Inst::Atom`] may carry an `expected`
//!   operand; on mismatch the issuing WG enters a waiting state registered
//!   atomically at the L2 (no window of vulnerability), and
//! * the **`wait` instruction** (§IV.C.iii–iv): [`Inst::Wait`] arms the
//!   SyncMon *after* the condition was checked by a separate atomic, which
//!   preserves the paper's race window for the MonR*/MonRS* policies.
//!
//! Programs are built with [`ProgramBuilder`], statically checked by
//! [`Program::verify`], and executed either functionally (this crate's
//! [`functional`] machine, used to unit-test workload correctness) or with
//! full timing by the `awg-gpu` crate.
//!
//! # Example
//!
//! ```
//! use awg_isa::{Cond, Operand, ProgramBuilder, Reg};
//!
//! // A tiny spin loop: while (atomicExch(lock, 1) != 0) {}
//! let mut b = ProgramBuilder::new("spin");
//! let retry = b.new_label();
//! b.bind(retry);
//! b.atom_exch(Reg::R0, 64, Operand::Imm(1));
//! b.br(Cond::Ne, Reg::R0, Operand::Imm(0), retry);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert_eq!(program.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod functional;
pub mod inst;
pub mod program;
pub mod reg;

pub use asm::{assemble, AsmError};
pub use builder::{BuildError, ProgramBuilder};
pub use functional::{FunctionalError, Machine, WgOutcome};
pub use inst::{AluOp, Cond, Inst, Mem, Operand, Special};
pub use program::{Label, Program, VerifyError};
pub use reg::{Reg, RegFile, NUM_REGS};
