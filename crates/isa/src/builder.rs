//! Fluent construction of kernel programs.

use std::fmt;

use awg_mem::{Addr, AtomicOp};

use crate::inst::{AluOp, Cond, Inst, Mem, Operand, Special};
use crate::program::{Label, Program, VerifyError};
use crate::reg::Reg;

/// Why [`ProgramBuilder::build`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The finished program failed static verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Verify(e) => write!(f, "program verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Verify(e) => Some(e),
        }
    }
}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> Self {
        BuildError::Verify(e)
    }
}

/// Addressing sugar: anything convertible into a [`Mem`] operand.
impl From<Addr> for Mem {
    fn from(base: Addr) -> Self {
        Mem::direct(base)
    }
}

/// A label-resolving program builder.
///
/// # Example
///
/// ```
/// use awg_isa::{AluOp, Cond, Operand, ProgramBuilder, Reg};
///
/// // for (r1 = 0; r1 != 10; r1++) { compute(100); }
/// let mut b = ProgramBuilder::new("loop10");
/// let head = b.new_label();
/// let done = b.new_label();
/// b.li(Reg::R1, 0);
/// b.bind(head);
/// b.br(Cond::Eq, Reg::R1, Operand::Imm(10), done);
/// b.compute(100);
/// b.alu(AluOp::Add, Reg::R1, Reg::R1, Operand::Imm(1));
/// b.jmp(head);
/// b.bind(done);
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    targets: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            insts: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.targets.push(None);
        Label::new((self.targets.len() - 1) as u32)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (always a builder-logic bug).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.targets[label.id() as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(self.insts.len());
    }

    /// Emits a raw instruction.
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Emits `compute cycles`.
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        self.raw(Inst::Compute(cycles))
    }

    /// Emits `s_sleep`.
    pub fn sleep(&mut self, cycles: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::Sleep(cycles.into()))
    }

    /// Emits an intra-WG barrier (`__syncthreads`).
    pub fn barrier(&mut self) -> &mut Self {
        self.raw(Inst::Barrier)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Inst::Halt)
    }

    /// Emits `li dst, imm`.
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.raw(Inst::Li(dst, imm))
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.raw(Inst::Mov(dst, src))
    }

    /// Emits `op dst, src, operand`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg, operand: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::Alu(op, dst, src, operand.into()))
    }

    /// Emits `add dst, src, operand` (sugar for the most common ALU op).
    pub fn add(&mut self, dst: Reg, src: Reg, operand: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, src, operand)
    }

    /// Emits an unconditional jump.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.raw(Inst::Jmp(label))
    }

    /// Emits `cond reg, operand, label`.
    pub fn br(
        &mut self,
        cond: Cond,
        reg: Reg,
        operand: impl Into<Operand>,
        label: Label,
    ) -> &mut Self {
        self.raw(Inst::Br(cond, reg, operand.into(), label))
    }

    /// Emits `ld dst, mem`.
    pub fn ld(&mut self, dst: Reg, mem: impl Into<Mem>) -> &mut Self {
        self.raw(Inst::Ld(dst, mem.into()))
    }

    /// Emits `st mem, operand`.
    pub fn st(&mut self, mem: impl Into<Mem>, operand: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::St(mem.into(), operand.into()))
    }

    /// Emits a plain atomic.
    pub fn atom(
        &mut self,
        op: AtomicOp,
        dst: Reg,
        mem: impl Into<Mem>,
        operand: impl Into<Operand>,
    ) -> &mut Self {
        self.raw(Inst::Atom {
            op,
            dst,
            mem: mem.into(),
            operand: operand.into(),
            expected: None,
        })
    }

    /// Emits a *waiting atomic* (§IV.D): the op executes and, when the
    /// observed value differs from `expected`, the WG enters the waiting
    /// state with no race window.
    pub fn atom_wait(
        &mut self,
        op: AtomicOp,
        dst: Reg,
        mem: impl Into<Mem>,
        operand: impl Into<Operand>,
        expected: impl Into<Operand>,
    ) -> &mut Self {
        self.raw(Inst::Atom {
            op,
            dst,
            mem: mem.into(),
            operand: operand.into(),
            expected: Some(expected.into()),
        })
    }

    /// Emits `atom_exch dst, mem, operand`.
    pub fn atom_exch(
        &mut self,
        dst: Reg,
        mem: impl Into<Mem>,
        operand: impl Into<Operand>,
    ) -> &mut Self {
        self.atom(AtomicOp::Exch, dst, mem, operand)
    }

    /// Emits `atom_add dst, mem, operand`.
    pub fn atom_add(
        &mut self,
        dst: Reg,
        mem: impl Into<Mem>,
        operand: impl Into<Operand>,
    ) -> &mut Self {
        self.atom(AtomicOp::Add, dst, mem, operand)
    }

    /// Emits an atomic load (`atomicLoad`).
    pub fn atom_load(&mut self, dst: Reg, mem: impl Into<Mem>) -> &mut Self {
        self.atom(AtomicOp::Load, dst, mem, 0i64)
    }

    /// Emits the paper's proposed **compare-and-wait**: an atomic load that
    /// waits on `expected` when the comparison fails (Fig 10, lower half).
    pub fn atom_cmp_wait(
        &mut self,
        dst: Reg,
        mem: impl Into<Mem>,
        expected: impl Into<Operand>,
    ) -> &mut Self {
        self.atom_wait(AtomicOp::Load, dst, mem, 0i64, expected)
    }

    /// Emits `atom_cas dst, mem, swap, expected` (CAS is inherently a
    /// waiting atomic — "a perfect candidate", §IV.D).
    pub fn atom_cas(
        &mut self,
        dst: Reg,
        mem: impl Into<Mem>,
        swap: impl Into<Operand>,
        expected: impl Into<Operand>,
    ) -> &mut Self {
        self.atom_wait(AtomicOp::Cas, dst, mem, swap, expected)
    }

    /// Emits the standalone `wait` instruction (MonR*/MonRS* policies; has
    /// the Fig 10 window-of-vulnerability race).
    pub fn wait(&mut self, mem: impl Into<Mem>, expected: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::Wait {
            mem: mem.into(),
            expected: expected.into(),
        })
    }

    /// Emits `spec dst, special`.
    pub fn special(&mut self, dst: Reg, special: Special) -> &mut Self {
        self.raw(Inst::Special(dst, special))
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes and verifies the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Verify`] when static verification fails (empty
    /// program, unbound label, fall-through end, …).
    pub fn build(self) -> Result<Program, BuildError> {
        let program = Program::from_parts(self.name, self.insts, self.targets);
        program.verify()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_minimal_program() {
        let mut b = ProgramBuilder::new("min");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.name(), "min");
    }

    #[test]
    fn empty_build_fails() {
        let b = ProgramBuilder::new("empty");
        assert!(matches!(
            b.build(),
            Err(BuildError::Verify(VerifyError::Empty))
        ));
    }

    #[test]
    fn unbound_label_fails_build() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.new_label();
        b.jmp(l);
        b.halt();
        assert!(matches!(
            b.build(),
            Err(BuildError::Verify(VerifyError::UnboundLabel(_)))
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("dup");
        let l = b.new_label();
        b.bind(l);
        b.halt();
        b.bind(l);
    }

    #[test]
    fn labels_resolve_to_bind_points() {
        let mut b = ProgramBuilder::new("lbl");
        let head = b.new_label();
        b.li(Reg::R0, 0);
        b.bind(head);
        b.compute(1);
        b.jmp(head);
        let p = b.build().unwrap();
        assert_eq!(p.target(head), 1);
    }

    #[test]
    fn sugar_emits_expected_instructions() {
        let mut b = ProgramBuilder::new("sugar");
        b.atom_cmp_wait(Reg::R0, 128u64, 1i64);
        b.atom_cas(Reg::R1, 64u64, 1i64, 0i64);
        b.halt();
        let p = b.build().unwrap();
        match p.inst(0) {
            Inst::Atom {
                op: AtomicOp::Load,
                expected: Some(Operand::Imm(1)),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match p.inst(1) {
            Inst::Atom {
                op: AtomicOp::Cas,
                expected: Some(Operand::Imm(0)),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.static_atomics(), 2);
    }

    #[test]
    fn fall_through_end_fails() {
        let mut b = ProgramBuilder::new("fall");
        b.compute(5);
        assert!(matches!(
            b.build(),
            Err(BuildError::Verify(VerifyError::FallsOffEnd))
        ));
    }
}
