//! Instruction definitions.

use std::fmt;

use awg_mem::{Addr, AtomicOp};

use crate::program::Label;
use crate::reg::Reg;

/// An instruction operand: immediate or register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A 64-bit immediate.
    Imm(i64),
    /// A register value.
    Reg(Reg),
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// A memory address expression: `base + index * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mem {
    /// Static base address.
    pub base: Addr,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Byte scale applied to the index (ignored when `index` is `None`).
    pub scale: u64,
}

impl Mem {
    /// A direct address with no indexing.
    pub fn direct(base: Addr) -> Self {
        Mem {
            base,
            index: None,
            scale: 1,
        }
    }

    /// `base + index * scale`.
    pub fn indexed(base: Addr, index: Reg, scale: u64) -> Self {
        Mem {
            base,
            index: Some(index),
            scale,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            None => write!(f, "[{:#x}]", self.base),
            Some(r) => write!(f, "[{:#x}+{}*{}]", self.base, r, self.scale),
        }
    }
}

/// Two-operand ALU operations (`dst = op(src, operand)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (wrapping).
    Mul,
    /// Division (toward zero; division by zero yields 0, like GPU hardware).
    Div,
    /// Remainder (remainder by zero yields 0).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Arithmetic shift right (shift amount masked to 63).
    Shr,
    /// Set if less-than (1/0).
    Slt,
    /// Set if equal (1/0).
    Seq,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Slt => (a < b) as i64,
            AluOp::Seq => (a == b) as i64,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Slt => "slt",
            AluOp::Seq => "seq",
            AluOp::Min => "min",
            AluOp::Max => "max",
        }
    }
}

/// Branch conditions comparing a register against an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Cond {
    /// Evaluates the condition.
    pub fn holds(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }
}

/// Launch-environment values readable by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Flat work-group id within the grid (0-based).
    WgId,
    /// Total number of work-groups in the grid.
    NumWgs,
    /// Work-groups per scheduling cluster (the paper's `L`, WGs per CU at
    /// launch — used by locally-scoped benchmarks to pick their sync var).
    WgsPerCluster,
    /// `WgId / WgsPerCluster` (convenience).
    ClusterId,
    /// Number of clusters (`NumWgs / WgsPerCluster`, rounded up).
    NumClusters,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::WgId => "wg_id",
            Special::NumWgs => "num_wgs",
            Special::WgsPerCluster => "wgs_per_cluster",
            Special::ClusterId => "cluster_id",
            Special::NumClusters => "num_clusters",
        };
        f.write_str(s)
    }
}

/// A kernel instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Occupy the SIMDs for the given number of cycles (models a stretch of
    /// data-parallel work, e.g. the critical-section body).
    Compute(u32),
    /// `s_sleep`: stall the WG for the cycle count in the operand without
    /// releasing resources (§IV.C.i).
    Sleep(Operand),
    /// `__syncthreads`: join all wavefronts of the WG (intra-WG barrier).
    Barrier,
    /// Terminate the WG.
    Halt,
    /// Load immediate: `dst = imm`.
    Li(Reg, i64),
    /// Register move: `dst = src`.
    Mov(Reg, Reg),
    /// ALU: `dst = op(src, operand)`.
    Alu(AluOp, Reg, Reg, Operand),
    /// Unconditional jump.
    Jmp(Label),
    /// Conditional branch: `if cond(reg, operand) goto label`.
    Br(Cond, Reg, Operand, Label),
    /// Global load through L1/L2: `dst = mem[addr]`.
    Ld(Reg, Mem),
    /// Global store (write-through): `mem[addr] = operand`.
    St(Mem, Operand),
    /// Atomic performed at the L2. With `expected` this is a *waiting
    /// atomic*: on comparison failure the WG enters the waiting state
    /// registered atomically with the operation (§IV.D).
    Atom {
        /// Operation.
        op: AtomicOp,
        /// Destination register for the old value.
        dst: Reg,
        /// Target address.
        mem: Mem,
        /// Data operand.
        operand: Operand,
        /// Expected value, making this a waiting atomic.
        expected: Option<Operand>,
    },
    /// The standalone `wait` instruction: arm the SyncMon on
    /// `(addr, expected)` and enter the waiting state. Subject to the
    /// window-of-vulnerability race (Fig 10) — an update between the
    /// preceding condition check and this instruction can be missed, so
    /// policies using it need a fallback timeout.
    Wait {
        /// Monitored address.
        mem: Mem,
        /// Value to wait for.
        expected: Operand,
    },
    /// Read a launch-environment value.
    Special(Reg, Special),
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Compute(c) => write!(f, "compute {c}"),
            Inst::Sleep(n) => write!(f, "s_sleep {n}"),
            Inst::Barrier => write!(f, "barrier"),
            Inst::Halt => write!(f, "halt"),
            Inst::Li(d, v) => write!(f, "li {d}, {v}"),
            Inst::Mov(d, s) => write!(f, "mov {d}, {s}"),
            Inst::Alu(op, d, s, o) => write!(f, "{} {d}, {s}, {o}", op.mnemonic()),
            Inst::Jmp(l) => write!(f, "jmp {l}"),
            Inst::Br(c, r, o, l) => write!(f, "{} {r}, {o}, {l}", c.mnemonic()),
            Inst::Ld(d, m) => write!(f, "ld {d}, {m}"),
            Inst::St(m, o) => write!(f, "st {m}, {o}"),
            Inst::Atom {
                op,
                dst,
                mem,
                operand,
                expected,
            } => match expected {
                None => write!(f, "{op} {dst}, {mem}, {operand}"),
                Some(e) => write!(f, "{op}.wait {dst}, {mem}, {operand}, expect={e}"),
            },
            Inst::Wait { mem, expected } => write!(f, "wait {mem}, {expected}"),
            Inst::Special(d, s) => write!(f, "spec {d}, {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), -1);
        assert_eq!(AluOp::Mul.apply(-4, 3), -12);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Div.apply(7, 0), 0);
        assert_eq!(AluOp::Rem.apply(7, 4), 3);
        assert_eq!(AluOp::Rem.apply(7, 0), 0);
        assert_eq!(AluOp::Slt.apply(1, 2), 1);
        assert_eq!(AluOp::Slt.apply(2, 2), 0);
        assert_eq!(AluOp::Seq.apply(5, 5), 1);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(-8, 1), -4);
        assert_eq!(AluOp::Min.apply(3, -1), -1);
        assert_eq!(AluOp::Max.apply(3, -1), 3);
    }

    #[test]
    fn alu_wrapping_never_panics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Mul.apply(i64::MAX, 2), -2);
        assert_eq!(AluOp::Shl.apply(1, 200), 1 << (200 & 63));
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.holds(1, 1));
        assert!(Cond::Ne.holds(1, 2));
        assert!(Cond::Lt.holds(1, 2));
        assert!(Cond::Le.holds(2, 2));
        assert!(Cond::Gt.holds(3, 2));
        assert!(Cond::Ge.holds(2, 2));
        assert!(!Cond::Lt.holds(2, 2));
    }

    #[test]
    fn display_renders_all_forms() {
        use awg_mem::AtomicOp;
        let insts = [
            Inst::Compute(100),
            Inst::Sleep(Operand::Imm(1000)),
            Inst::Barrier,
            Inst::Halt,
            Inst::Li(Reg::R1, -3),
            Inst::Mov(Reg::R1, Reg::R2),
            Inst::Alu(AluOp::Add, Reg::R0, Reg::R1, Operand::Imm(1)),
            Inst::Jmp(Label::untracked(4)),
            Inst::Br(Cond::Ne, Reg::R0, Operand::Imm(0), Label::untracked(0)),
            Inst::Ld(Reg::R3, Mem::direct(64)),
            Inst::St(Mem::indexed(64, Reg::R1, 8), Operand::Reg(Reg::R2)),
            Inst::Atom {
                op: AtomicOp::Cas,
                dst: Reg::R0,
                mem: Mem::direct(64),
                operand: Operand::Imm(1),
                expected: Some(Operand::Imm(0)),
            },
            Inst::Wait {
                mem: Mem::direct(64),
                expected: Operand::Imm(1),
            },
            Inst::Special(Reg::R5, Special::WgId),
        ];
        for inst in insts {
            assert!(!inst.to_string().is_empty());
        }
        assert_eq!(insts[4].to_string(), "li r1, -3");
        assert!(insts[11].to_string().contains("expect=0"));
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(5i64), Operand::Imm(5));
        assert_eq!(Operand::from(Reg::R2), Operand::Reg(Reg::R2));
    }
}
