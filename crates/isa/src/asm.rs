//! A text assembler for the kernel ISA.
//!
//! Accepts exactly the syntax [`crate::Program::disassemble`] emits (so
//! every program round-trips), which makes it convenient to write custom
//! kernels as plain text in tests and examples:
//!
//! ```
//! let program = awg_isa::asm::assemble(
//!     r"
//!     ; spin until [0x1000] == 1, then bump a counter
//!     retry:
//!         atom_ld.wait r0, [0x1000], 0, expect=1
//!         bne r0, 1, retry
//!         atom_add r1, [0x1040], 1
//!         halt
//!     ",
//!     "spin",
//! ).expect("assembles");
//! assert_eq!(program.len(), 4);
//! ```
//!
//! # Syntax
//!
//! * one instruction per line; `;` starts a comment; blank lines ignored
//! * `name:` binds a label; branch operands reference labels by name
//! * registers are `r0` … `r31`; immediates are decimal or `0x…` hex
//! * memory operands are `[base]` or `[base+rN*scale]`
//! * atomics are `atom_<op> dst, mem, operand` with an optional `.wait`
//!   suffix and `, expect=<operand>` tail for waiting atomics
//! * lines may carry a leading `<pc>:` number (disassembler output)

use std::collections::HashMap;
use std::fmt;

use awg_mem::AtomicOp;

use crate::builder::ProgramBuilder;
use crate::inst::{AluOp, Cond, Mem, Operand, Special};
use crate::program::{Label, Program};
use crate::reg::{Reg, NUM_REGS};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

struct Assembler<'a> {
    builder: ProgramBuilder,
    labels: HashMap<String, Label>,
    bound: HashMap<String, usize>,
    line: usize,
    source_name: &'a str,
}

impl<'a> Assembler<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, AsmError> {
        Err(AsmError {
            line: self.line,
            message: message.into(),
        })
    }

    fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.builder.new_label();
        self.labels.insert(name.to_owned(), l);
        l
    }

    fn parse_reg(&self, token: &str) -> Result<Reg, AsmError> {
        let rest = token.strip_prefix('r').ok_or_else(|| AsmError {
            line: self.line,
            message: format!("expected register, found '{token}'"),
        })?;
        let index: usize = rest.parse().map_err(|_| AsmError {
            line: self.line,
            message: format!("bad register '{token}'"),
        })?;
        if index >= NUM_REGS {
            return self.err(format!("register index {index} out of range"));
        }
        Ok(Reg::new(index as u8))
    }

    fn parse_int(&self, token: &str) -> Result<i64, AsmError> {
        let (negative, body) = match token.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, token),
        };
        let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).map(|v| v as i64)
        } else {
            body.parse::<u64>().map(|v| v as i64)
        };
        match value {
            Ok(v) => Ok(if negative { v.wrapping_neg() } else { v }),
            Err(_) => self.err(format!("bad integer '{token}'")),
        }
    }

    fn parse_operand(&self, token: &str) -> Result<Operand, AsmError> {
        if token.starts_with('r') && token[1..].chars().all(|c| c.is_ascii_digit()) {
            Ok(Operand::Reg(self.parse_reg(token)?))
        } else {
            Ok(Operand::Imm(self.parse_int(token)?))
        }
    }

    fn parse_mem(&self, token: &str) -> Result<Mem, AsmError> {
        let inner = token
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| AsmError {
                line: self.line,
                message: format!("expected memory operand like [0x40], found '{token}'"),
            })?;
        match inner.split_once('+') {
            None => Ok(Mem::direct(self.parse_int(inner)? as u64)),
            Some((base, idx)) => {
                let base = self.parse_int(base)? as u64;
                let (reg, scale) = match idx.split_once('*') {
                    Some((r, s)) => (self.parse_reg(r)?, self.parse_int(s)? as u64),
                    None => (self.parse_reg(idx)?, 1),
                };
                Ok(Mem::indexed(base, reg, scale))
            }
        }
    }

    fn parse_special(&self, token: &str) -> Result<Special, AsmError> {
        match token {
            "wg_id" => Ok(Special::WgId),
            "num_wgs" => Ok(Special::NumWgs),
            "wgs_per_cluster" => Ok(Special::WgsPerCluster),
            "cluster_id" => Ok(Special::ClusterId),
            "num_clusters" => Ok(Special::NumClusters),
            other => self.err(format!("unknown special register '{other}'")),
        }
    }

    fn atomic_op(mnemonic: &str) -> Option<AtomicOp> {
        Some(match mnemonic {
            "atom_ld" => AtomicOp::Load,
            "atom_st" => AtomicOp::Store,
            "atom_exch" => AtomicOp::Exch,
            "atom_add" => AtomicOp::Add,
            "atom_sub" => AtomicOp::Sub,
            "atom_and" => AtomicOp::And,
            "atom_or" => AtomicOp::Or,
            "atom_xor" => AtomicOp::Xor,
            "atom_max" => AtomicOp::Max,
            "atom_min" => AtomicOp::Min,
            "atom_cas" => AtomicOp::Cas,
            _ => return None,
        })
    }

    fn alu_op(mnemonic: &str) -> Option<AluOp> {
        Some(match mnemonic {
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "mul" => AluOp::Mul,
            "div" => AluOp::Div,
            "rem" => AluOp::Rem,
            "and" => AluOp::And,
            "or" => AluOp::Or,
            "xor" => AluOp::Xor,
            "shl" => AluOp::Shl,
            "shr" => AluOp::Shr,
            "slt" => AluOp::Slt,
            "seq" => AluOp::Seq,
            "min" => AluOp::Min,
            "max" => AluOp::Max,
            _ => return None,
        })
    }

    fn branch_cond(mnemonic: &str) -> Option<Cond> {
        Some(match mnemonic {
            "beq" => Cond::Eq,
            "bne" => Cond::Ne,
            "blt" => Cond::Lt,
            "ble" => Cond::Le,
            "bgt" => Cond::Gt,
            "bge" => Cond::Ge,
            _ => return None,
        })
    }

    fn expect_args(&self, args: &[&str], n: usize, mnemonic: &str) -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            self.err(format!(
                "{mnemonic} takes {n} operand(s), found {}",
                args.len()
            ))
        }
    }

    fn instruction(&mut self, mnemonic: &str, args: &[&str]) -> Result<(), AsmError> {
        if let Some(op) = Self::alu_op(mnemonic) {
            self.expect_args(args, 3, mnemonic)?;
            let dst = self.parse_reg(args[0])?;
            let src = self.parse_reg(args[1])?;
            let operand = self.parse_operand(args[2])?;
            self.builder.alu(op, dst, src, operand);
            return Ok(());
        }
        if let Some(cond) = Self::branch_cond(mnemonic) {
            self.expect_args(args, 3, mnemonic)?;
            let reg = self.parse_reg(args[0])?;
            let operand = self.parse_operand(args[1])?;
            let label = self.label(args[2]);
            self.builder.br(cond, reg, operand, label);
            return Ok(());
        }
        if let Some(op) = Self::atomic_op(mnemonic.trim_end_matches(".wait")) {
            let waiting = mnemonic.ends_with(".wait");
            // dst, mem, operand [, expect=<operand>]
            let min = 3;
            if args.len() < min {
                return self.err(format!("{mnemonic} takes at least {min} operands"));
            }
            let dst = self.parse_reg(args[0])?;
            let mem = self.parse_mem(args[1])?;
            let operand = self.parse_operand(args[2])?;
            let expected = match args.get(3) {
                None => None,
                Some(tail) => {
                    let value = tail.strip_prefix("expect=").ok_or_else(|| AsmError {
                        line: self.line,
                        message: format!("expected 'expect=<value>', found '{tail}'"),
                    })?;
                    Some(self.parse_operand(value)?)
                }
            };
            if waiting && expected.is_none() {
                return self.err(format!("{mnemonic} requires an expect=<value> operand"));
            }
            if !waiting && expected.is_some() {
                return self.err("plain atomics take no expect= operand (use .wait)");
            }
            self.builder.raw(crate::inst::Inst::Atom {
                op,
                dst,
                mem,
                operand,
                expected,
            });
            return Ok(());
        }
        match mnemonic {
            "compute" => {
                self.expect_args(args, 1, mnemonic)?;
                let cycles = self.parse_int(args[0])?;
                if !(0..=u32::MAX as i64).contains(&cycles) {
                    return self.err("compute cycles out of range");
                }
                self.builder.compute(cycles as u32);
            }
            "s_sleep" => {
                self.expect_args(args, 1, mnemonic)?;
                let operand = self.parse_operand(args[0])?;
                self.builder.sleep(operand);
            }
            "barrier" => {
                self.expect_args(args, 0, mnemonic)?;
                self.builder.barrier();
            }
            "halt" => {
                self.expect_args(args, 0, mnemonic)?;
                self.builder.halt();
            }
            "li" => {
                self.expect_args(args, 2, mnemonic)?;
                let dst = self.parse_reg(args[0])?;
                let imm = self.parse_int(args[1])?;
                self.builder.li(dst, imm);
            }
            "mov" => {
                self.expect_args(args, 2, mnemonic)?;
                let dst = self.parse_reg(args[0])?;
                let src = self.parse_reg(args[1])?;
                self.builder.mov(dst, src);
            }
            "jmp" => {
                self.expect_args(args, 1, mnemonic)?;
                let label = self.label(args[0]);
                self.builder.jmp(label);
            }
            "ld" => {
                self.expect_args(args, 2, mnemonic)?;
                let dst = self.parse_reg(args[0])?;
                let mem = self.parse_mem(args[1])?;
                self.builder.ld(dst, mem);
            }
            "st" => {
                self.expect_args(args, 2, mnemonic)?;
                let mem = self.parse_mem(args[0])?;
                let operand = self.parse_operand(args[1])?;
                self.builder.st(mem, operand);
            }
            "wait" => {
                self.expect_args(args, 2, mnemonic)?;
                let mem = self.parse_mem(args[0])?;
                let expected = self.parse_operand(args[1])?;
                self.builder.wait(mem, expected);
            }
            "spec" => {
                self.expect_args(args, 2, mnemonic)?;
                let dst = self.parse_reg(args[0])?;
                let special = self.parse_special(args[1])?;
                self.builder.special(dst, special);
            }
            other => return self.err(format!("unknown mnemonic '{other}'")),
        }
        Ok(())
    }

    fn run(mut self, source: &str) -> Result<Program, AsmError> {
        for (i, raw_line) in source.lines().enumerate() {
            self.line = i + 1;
            let mut line = raw_line;
            if let Some(idx) = line.find(';') {
                line = &line[..idx];
            }
            let mut line = line.trim();
            if line.is_empty() {
                continue;
            }
            // Strip a leading "<pc>:" produced by the disassembler.
            if let Some((head, tail)) = line.split_once(':') {
                if !head.trim().is_empty() && head.trim().chars().all(|c| c.is_ascii_digit()) {
                    line = tail.trim();
                    if line.is_empty() {
                        continue;
                    }
                }
            }
            // Label binding?
            if let Some(name) = line.strip_suffix(':') {
                let name = name.trim();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    return self.err(format!("bad label binding '{line}'"));
                }
                if self.bound.contains_key(name) {
                    return self.err(format!("label '{name}' bound twice"));
                }
                self.bound.insert(name.to_owned(), self.builder.len());
                let label = self.label(name);
                self.builder.bind(label);
                continue;
            }
            let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
                Some((m, r)) => (m, r.trim()),
                None => (line, ""),
            };
            let args: Vec<&str> = if rest.is_empty() {
                Vec::new()
            } else {
                rest.split(',').map(str::trim).collect()
            };
            self.instruction(mnemonic, &args)?;
        }
        // Unbound labels become verification errors with names attached.
        for (name, label) in &self.labels {
            if !self.bound.contains_key(name) {
                return Err(AsmError {
                    line: 0,
                    message: format!("label '{name}' ({label}) is never bound"),
                });
            }
        }
        let name = self.source_name;
        self.builder.build().map_err(|e| AsmError {
            line: 0,
            message: format!("program '{name}' failed verification: {e}"),
        })
    }
}

/// Assembles `source` into a verified [`Program`] named `name`.
///
/// # Errors
///
/// Returns an [`AsmError`] with the offending line for syntax problems, or
/// line 0 for whole-program failures (unbound labels, verification).
pub fn assemble(source: &str, name: &str) -> Result<Program, AsmError> {
    Assembler {
        builder: ProgramBuilder::new(name),
        labels: HashMap::new(),
        bound: HashMap::new(),
        line: 0,
        source_name: name,
    }
    .run(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn assembles_every_instruction_form() {
        let p = assemble(
            r"
            start:
                li r1, 10
                mov r2, r1
                add r3, r2, 0x10
                seq r4, r3, r2
                spec r5, cluster_id
                ld r6, [0x1000]
                ld r7, [0x1000+r1*8]
                st [0x1040], r6
                st [0x1040+r1], -5
                atom_add r0, [0x2000], 1
                atom_cas.wait r0, [0x2000], 1, expect=0
                atom_ld.wait r0, [0x2000], 0, expect=1
                wait [0x2000], 1
                compute 500
                s_sleep 1000
                s_sleep r1
                barrier
                beq r4, 1, start
                jmp end
            end:
                halt
            ",
            "everything",
        )
        .expect("assembles");
        assert_eq!(p.len(), 20);
        assert!(matches!(
            p.inst(10),
            Inst::Atom {
                expected: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn roundtrips_with_the_disassembler() {
        let p = assemble(
            r"
            loop:
                atom_exch r0, [0x40], 1
                bne r0, 0, loop
                compute 100
                atom_exch r0, [0x40], 0
                halt
            ",
            "tas",
        )
        .unwrap();
        let asm = p.disassemble();
        let p2 = assemble(&asm, "tas").expect("reassembles its own output");
        assert_eq!(p.insts(), p2.insts());
        assert_eq!(p2.disassemble(), asm);
    }

    #[test]
    fn reports_line_numbers() {
        let err = assemble("li r1, 1\nfrobnicate r2\nhalt", "bad").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("frobnicate"), "{err}");
    }

    #[test]
    fn rejects_unbound_labels() {
        let err = assemble("jmp nowhere\nhalt", "bad").unwrap_err();
        assert!(err.message.contains("nowhere"), "{err}");
    }

    #[test]
    fn rejects_double_binding() {
        let err = assemble("x:\nhalt\nx:\nhalt", "bad").unwrap_err();
        assert!(err.message.contains("bound twice"), "{err}");
    }

    #[test]
    fn rejects_waiting_atomic_without_expectation() {
        let err = assemble("atom_cas.wait r0, [0x40], 1\nhalt", "bad").unwrap_err();
        assert!(err.message.contains("expect="), "{err}");
    }

    #[test]
    fn rejects_bad_register_and_integer() {
        assert!(assemble("li r99, 1\nhalt", "bad").is_err());
        assert!(assemble("li r1, zork\nhalt", "bad").is_err());
        assert!(
            assemble("ld r1, 0x40\nhalt", "bad").is_err(),
            "missing brackets"
        );
    }

    #[test]
    fn assembled_program_runs_functionally() {
        use crate::functional::Machine;
        let p = assemble(
            r"
                spec r1, wg_id
                add r1, r1, 1
                atom_add r0, [0x100], r1
                halt
            ",
            "sum",
        )
        .unwrap();
        let mut m = Machine::new(p, 4, 2);
        m.run(10_000).unwrap();
        assert_eq!(m.mem().load(0x100), 1 + 2 + 3 + 4);
    }

    #[test]
    fn comments_and_pc_prefixes_are_ignored() {
        let p = assemble("; program: x\n   0: li r1, 5 ; five\n  1: halt", "x").unwrap();
        assert_eq!(p.len(), 2);
    }
}
