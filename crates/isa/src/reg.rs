//! Registers and the per-work-group register file.
//!
//! Inter-WG synchronization in HeteroSync is performed by each WG's master
//! thread, so the interpreter keeps one architectural register file per WG
//! context. Thirty-two 64-bit registers comfortably cover every benchmark.

use std::fmt;

/// Number of architectural registers per WG context.
pub const NUM_REGS: usize = 32;

/// An architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Register 0 (no special semantics — just a conventional scratch reg).
    pub const R0: Reg = Reg(0);
    /// Register 1.
    pub const R1: Reg = Reg(1);
    /// Register 2.
    pub const R2: Reg = Reg(2);
    /// Register 3.
    pub const R3: Reg = Reg(3);
    /// Register 4.
    pub const R4: Reg = Reg(4);
    /// Register 5.
    pub const R5: Reg = Reg(5);
    /// Register 6.
    pub const R6: Reg = Reg(6);
    /// Register 7.
    pub const R7: Reg = Reg(7);
    /// Register 8.
    pub const R8: Reg = Reg(8);
    /// Register 9.
    pub const R9: Reg = Reg(9);
    /// Register 10.
    pub const R10: Reg = Reg(10);
    /// Register 11.
    pub const R11: Reg = Reg(11);
    /// Register 12.
    pub const R12: Reg = Reg(12);
    /// Register 13.
    pub const R13: Reg = Reg(13);
    /// Register 14.
    pub const R14: Reg = Reg(14);
    /// Register 15.
    pub const R15: Reg = Reg(15);
    /// Register 16.
    pub const R16: Reg = Reg(16);
    /// Register 17.
    pub const R17: Reg = Reg(17);
    /// Register 18.
    pub const R18: Reg = Reg(18);
    /// Register 19.
    pub const R19: Reg = Reg(19);
    /// Register 20.
    pub const R20: Reg = Reg(20);
    /// Register 21.
    pub const R21: Reg = Reg(21);
    /// Register 22.
    pub const R22: Reg = Reg(22);
    /// Register 23.
    pub const R23: Reg = Reg(23);

    /// Creates register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_REGS, "register index out of range");
        Reg(index)
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A per-WG register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs: [i64; NUM_REGS],
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        RegFile {
            regs: [0; NUM_REGS],
        }
    }

    /// Reads register `r`.
    #[inline]
    pub fn get(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes register `r`.
    #[inline]
    pub fn set(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// All register values, in index order (checkpoint export).
    pub fn words(&self) -> &[i64; NUM_REGS] {
        &self.regs
    }

    /// Overwrites the whole file from [`RegFile::words`] (checkpoint
    /// import).
    pub fn load_words(&mut self, words: [i64; NUM_REGS]) {
        self.regs = words;
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut rf = RegFile::new();
        rf.set(Reg::R3, -42);
        assert_eq!(rf.get(Reg::R3), -42);
        assert_eq!(rf.get(Reg::R4), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::new(31).to_string(), "r31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        Reg::new(32);
    }
}
