//! Bit-reproducibility: identical configurations produce identical
//! simulations, event for event.

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

fn fingerprint(kind: BenchmarkKind, policy: PolicyKind, config: ExperimentConfig) -> Vec<u64> {
    let scale = Scale::quick();
    let r = run_experiment(kind, policy, &scale, config);
    let s = r.outcome.summary();
    vec![
        s.cycles,
        s.insts,
        s.atomics,
        s.running_cycles,
        s.waiting_cycles,
        s.switches_out,
        s.switches_in,
        s.resumes,
        s.unnecessary_resumes,
    ]
}

#[test]
fn identical_runs_are_bit_identical() {
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::SleepMutexGlobal,
        BenchmarkKind::TreeBarrier,
        BenchmarkKind::HashTable,
        BenchmarkKind::BankAccount,
    ] {
        for policy in [PolicyKind::Baseline, PolicyKind::MonNrOne, PolicyKind::Awg] {
            let a = fingerprint(kind, policy, ExperimentConfig::NonOversubscribed);
            let b = fingerprint(kind, policy, ExperimentConfig::NonOversubscribed);
            assert_eq!(a, b, "{kind} under {:?} diverged", policy.label());
        }
    }
}

#[test]
fn oversubscribed_runs_are_deterministic_too() {
    for policy in [PolicyKind::Timeout, PolicyKind::Awg] {
        let a = fingerprint(
            BenchmarkKind::FaMutexGlobal,
            policy,
            ExperimentConfig::Oversubscribed,
        );
        let b = fingerprint(
            BenchmarkKind::FaMutexGlobal,
            policy,
            ExperimentConfig::Oversubscribed,
        );
        assert_eq!(a, b);
    }
}

#[test]
fn different_seeds_change_randomized_workloads_only() {
    let mut scale_a = Scale::quick();
    scale_a.params.seed = 1;
    let mut scale_b = Scale::quick();
    scale_b.params.seed = 2;
    // The bank account hashes the seed into its transfer pattern…
    let a = run_experiment(
        BenchmarkKind::BankAccount,
        PolicyKind::Awg,
        &scale_a,
        ExperimentConfig::NonOversubscribed,
    );
    let b = run_experiment(
        BenchmarkKind::BankAccount,
        PolicyKind::Awg,
        &scale_b,
        ExperimentConfig::NonOversubscribed,
    );
    assert!(a.is_valid_completion() && b.is_valid_completion());
    assert_ne!(
        a.cycles(),
        b.cycles(),
        "different transfer patterns should differ in timing"
    );
    // …while the deterministic spin mutex ignores it.
    let a = run_experiment(
        BenchmarkKind::SpinMutexGlobal,
        PolicyKind::Awg,
        &scale_a,
        ExperimentConfig::NonOversubscribed,
    );
    let b = run_experiment(
        BenchmarkKind::SpinMutexGlobal,
        PolicyKind::Awg,
        &scale_b,
        ExperimentConfig::NonOversubscribed,
    );
    assert_eq!(a.cycles(), b.cycles());
}
