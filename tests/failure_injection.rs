//! Liveness under lost notifications: dropping SyncMon wakes degrades
//! performance but never forward progress or correctness, because every
//! waiting WG carries a fallback timeout (§V.A's liveness argument).

use awg_core::policies::chaos::DropWakes;
use awg_core::policies::{AwgPolicy, MonNrAllPolicy, MonNrOnePolicy, PolicyKind};
use awg_harness::{run_with_policy, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

#[test]
fn awg_survives_dropping_every_other_wake() {
    let scale = Scale::quick();
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::TreeBarrier,
        BenchmarkKind::SleepMutexGlobal,
    ] {
        let r = run_with_policy(
            kind,
            PolicyKind::Awg,
            Box::new(DropWakes::new(AwgPolicy::new(), 2)),
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(r.outcome.is_completed(), "{kind}: {:?}", r.outcome);
        r.validated.unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn even_dropping_all_wakes_only_slows_things_down() {
    let scale = Scale::quick();
    let kind = BenchmarkKind::FaMutexGlobal;
    let clean = run_with_policy(
        kind,
        PolicyKind::MonNrAll,
        Box::new(MonNrAllPolicy::new()),
        &scale,
        ExperimentConfig::NonOversubscribed,
    );
    let lossy = run_with_policy(
        kind,
        PolicyKind::MonNrAll,
        Box::new(DropWakes::new(MonNrAllPolicy::new(), 1)),
        &scale,
        ExperimentConfig::NonOversubscribed,
    );
    assert!(clean.is_valid_completion());
    assert!(lossy.outcome.is_completed(), "{:?}", lossy.outcome);
    lossy
        .validated
        .as_ref()
        .expect("correctness is notification-independent");
    assert!(
        lossy.cycles().unwrap() > clean.cycles().unwrap(),
        "losing every wake must cost time: {:?} vs {:?}",
        lossy.cycles(),
        clean.cycles()
    );
    assert_eq!(
        lossy
            .outcome
            .summary()
            .stats
            .get_by_name("chaos_wakes_dropped")
            .map(|d| d > 0),
        Some(true)
    );
}

#[test]
fn chaos_composes_with_oversubscription() {
    let scale = Scale::quick();
    let r = run_with_policy(
        BenchmarkKind::TreeBarrier,
        PolicyKind::MonNrOne,
        Box::new(DropWakes::new(MonNrOnePolicy::new(), 3)),
        &scale,
        ExperimentConfig::Oversubscribed,
    );
    assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    r.validated
        .as_ref()
        .expect("barrier order under chaos + CU loss");
}
