//! Golden-file regression: the quick-scale figures are bit-reproducible,
//! so their CSV output is committed and compared verbatim. A diff here
//! means either a deliberate model/calibration change (regenerate the
//! goldens with `awg-repro --quick fig9|fig14 --out tests/golden` and
//! review the delta) or an accidental determinism break.

use awg_harness::{fig09, fig14, Scale};

fn compare(name: &str, actual: String) {
    let path = format!("{}/tests/golden/{name}.csv", env!("CARGO_MANIFEST_DIR"));
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "{name} diverged from its golden file ({path}); \
         regenerate with `awg-repro --quick {name} --out tests/golden` if intentional"
    );
}

#[test]
fn fig9_quick_matches_golden() {
    compare("fig9", fig09::run(&Scale::quick()).to_csv());
}

#[test]
fn fig14_quick_matches_golden() {
    compare("fig14", fig14::run(&Scale::quick()).to_csv());
}
