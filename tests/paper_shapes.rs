//! The reproduction's headline claims, asserted at full paper scale.
//!
//! These are the EXPERIMENTS.md rows turned into executable checks: if a
//! refactor or recalibration flips who wins, this fails before the docs
//! can go stale. Runs in a few seconds (the simulator is fast).

use awg_core::policies::PolicyKind;
use awg_harness::{fig09, fig14, fig15, run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

#[test]
fn awg_beats_busy_waiting_on_single_sync_var_kernels() {
    // Paper: "12x faster than a busy-waiting baseline for applications that
    // utilize one synchronization variable for an entire WG."
    let scale = Scale::paper();
    for (kind, min_speedup) in [
        (BenchmarkKind::FaMutexGlobal, 6.0),
        (BenchmarkKind::SpinMutexGlobal, 3.0),
    ] {
        let base = run_experiment(
            kind,
            PolicyKind::Baseline,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        let awg = run_experiment(
            kind,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(base.is_valid_completion() && awg.is_valid_completion());
        let speedup = base.cycles().unwrap() as f64 / awg.cycles().unwrap() as f64;
        assert!(
            speedup >= min_speedup,
            "{kind}: AWG speedup {speedup:.1} < {min_speedup}"
        );
    }
}

#[test]
fn fig14_policy_ordering_holds() {
    let r = fig14::run(&Scale::paper());
    let geo = |p: &str| r.cell("GeoMean", p).unwrap().as_num().unwrap();
    assert!(geo("AWG") > 1.0, "AWG must beat Baseline");
    assert!(geo("AWG") >= geo("MonNR-One"), "prediction beats fixed one");
    assert!(geo("AWG") >= geo("MonNR-All"), "prediction beats fixed all");
    assert!(geo("Timeout") < 1.0, "fixed timeouts lose to busy-waiting");
    assert!(geo("Sleep") < 1.0, "backoff loses overall at this scale");
    // The class split: MonNR-One collapses on the centralized barrier,
    // MonNR-All trails on the contended mutex; AWG matches the better one.
    let tb_one = r.cell("TB_LG", "MonNR-One").unwrap().as_num().unwrap();
    let tb_awg = r.cell("TB_LG", "AWG").unwrap().as_num().unwrap();
    assert!(tb_awg > 4.0 * tb_one, "barrier: AWG ≫ MonNR-One");
    let spm_all = r.cell("SPM_G", "MonNR-All").unwrap().as_num().unwrap();
    let spm_awg = r.cell("SPM_G", "AWG").unwrap().as_num().unwrap();
    assert!(spm_awg > 2.0 * spm_all, "mutex: AWG ≫ MonNR-All");
}

#[test]
fn fig15_baseline_and_sleep_deadlock_everywhere_awg_wins() {
    use awg_harness::Cell;
    let r = fig15::run(&Scale::paper());
    for row in &r.rows {
        if row.label == "GeoMean" {
            continue;
        }
        assert_eq!(row.cells[0], Cell::Deadlock, "{} Baseline", row.label);
        assert_eq!(row.cells[1], Cell::Deadlock, "{} Sleep", row.label);
        assert!(
            row.cells[5].as_num().is_some(),
            "{} AWG must complete",
            row.label
        );
    }
    let awg_geo = r.cell("GeoMean", "AWG").unwrap().as_num().unwrap();
    assert!(
        awg_geo >= 2.0,
        "paper claims ≥2.5x over Timeout; measured {awg_geo:.2}"
    );
}

#[test]
fn fig9_sporadic_monitor_wastes_atomics() {
    let r = fig09::run(&Scale::paper());
    let fam_monrs = r.cell("FAM_G", "MonRS-All").unwrap().as_num().unwrap();
    let fam_monnr = r.cell("FAM_G", "MonNR-All").unwrap().as_num().unwrap();
    assert!(
        fam_monrs >= 5.0 * fam_monnr,
        "sporadic {fam_monrs:.1} vs checked {fam_monnr:.1}"
    );
    // Decentralized primitives are unaffected (Table 2: one update per var).
    for kind in ["SLM_G", "LFTB_LG", "LFTBEX_LG"] {
        let v = r.cell(kind, "MonRS-All").unwrap().as_num().unwrap();
        assert!(
            (0.8..=1.5).contains(&v),
            "{kind}: decentralized should sit at the oracle, got {v:.2}"
        );
    }
}
