//! The differential chaos matrix: every (benchmark × IFP policy) pair must
//! complete, validate, and stay bit-deterministic under seeded fault plans
//! (§V.A under adversity), while Baseline's oversubscribed deadlock must
//! yield an actionable forensic hang report instead of a bare cycle count.

use awg_core::policies::PolicyKind;
use awg_harness::{chaos, run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

#[test]
fn matrix_is_fault_invariant_and_deterministic() {
    let (report, violations) = chaos::run_checked(&Scale::quick(), &chaos::DEFAULT_SEEDS);
    assert_eq!(
        violations,
        0,
        "chaos matrix violations:\n{}\n{}",
        report.to_markdown(),
        report.notes.join("\n")
    );
}

#[test]
fn different_seeds_produce_different_adversity() {
    let scale = Scale::quick();
    let a = chaos::run_faulted(BenchmarkKind::SpinMutexGlobal, PolicyKind::Awg, &scale, 101);
    let b = chaos::run_faulted(BenchmarkKind::SpinMutexGlobal, PolicyKind::Awg, &scale, 303);
    assert_ne!(
        chaos::fingerprint(&a),
        chaos::fingerprint(&b),
        "seeds 101 and 303 should schedule different fault timelines"
    );
}

#[test]
fn faulted_runs_carry_oracle_and_digest_instrumentation() {
    let scale = Scale::quick();
    let a = chaos::run_faulted(
        BenchmarkKind::TreeBarrier,
        PolicyKind::MonNrAll,
        &scale,
        101,
    );
    let b = chaos::run_faulted(
        BenchmarkKind::TreeBarrier,
        PolicyKind::MonNrAll,
        &scale,
        101,
    );
    assert!(
        a.violations.is_empty(),
        "the invariant oracle found violations on a passing run: {:?}",
        a.violations
    );
    assert!(
        !a.digest_trail.is_empty(),
        "chaos runs must record per-window state digests"
    );
    assert_eq!(
        awg_sim::first_divergence(&a.digest_trail, &b.digest_trail),
        None,
        "same-seed pair must agree in every digest window"
    );
    assert_eq!(a.digest_trail.len(), b.digest_trail.len());
}

#[test]
fn fault_plans_actually_engage_the_machine() {
    let scale = Scale::quick();
    let r = chaos::run_faulted(BenchmarkKind::FaMutexGlobal, PolicyKind::Awg, &scale, 202);
    assert!(r.is_valid_completion(), "{} / {:?}", r.outcome, r.validated);
    let stats = &r.outcome.summary().stats;
    assert_eq!(
        stats.get_by_name("fault_cu_losses"),
        Some(2),
        "the standard plan schedules two CU flaps"
    );
    assert_eq!(
        stats.get_by_name("fault_wake_windows"),
        Some(2),
        "the standard plan opens two wake-chaos windows"
    );
    assert_eq!(
        stats.get_by_name("fault_policy_injections"),
        Some(4),
        "two evictions plus two bloom storms reach the policy"
    );
}

#[test]
fn resident_safe_plans_spare_non_rescheduling_policies() {
    let scale = Scale::quick();
    for seed in chaos::DEFAULT_SEEDS {
        let r = chaos::run_faulted(BenchmarkKind::TreeBarrier, PolicyKind::Sleep, &scale, seed);
        assert!(
            r.is_valid_completion(),
            "seed {seed}: {} / {:?}",
            r.outcome,
            r.validated
        );
        assert_eq!(
            r.outcome.summary().stats.get_by_name("fault_cu_losses"),
            Some(0),
            "seed {seed}: Sleep cannot survive CU loss, so its plans must not unplug"
        );
    }
}

/// Satellite: the known Fig 15 Baseline oversubscribed deadlock must name
/// the actual waiting WGs and their lock/barrier addresses.
#[test]
fn baseline_oversubscribed_hang_report_names_waiters() {
    let scale = Scale::quick();
    let r = run_experiment(
        BenchmarkKind::TreeBarrier,
        PolicyKind::Baseline,
        &scale,
        ExperimentConfig::Oversubscribed,
    );
    assert!(r.deadlocked(), "expected deadlock, got {}", r.outcome);
    let hang = r.outcome.hang_report().expect("deadlock carries a report");
    assert!(!hang.unfinished.is_empty());
    assert!(hang.unfinished.len() <= scale.params.num_wgs as usize);

    let blocked: Vec<_> = hang.blocked_on_sync().collect();
    assert!(
        !blocked.is_empty(),
        "at least one WG must be caught on a sync address:\n{hang}"
    );
    for w in &blocked {
        let addr = w
            .cond
            .map(|c| c.addr)
            .or(w.spinning_on.map(|(a, _)| a))
            .expect("blocked WGs carry an address");
        assert!(
            hang.waits_for
                .iter()
                .any(|(a, wgs)| *a == addr && wgs.contains(&w.wg)),
            "wg {} missing from waits-for entry for {addr:#x}:\n{hang}",
            w.wg
        );
        assert!(
            w.observed.is_some(),
            "blocked WGs report the value actually in memory:\n{hang}"
        );
    }

    let text = hang.to_string();
    assert!(
        text.contains("waits-for"),
        "waits-for section missing:\n{text}"
    );
    for (addr, _) in &hang.waits_for {
        assert!(
            text.contains(&format!("{addr:#x}")),
            "address {addr:#x} missing from the rendered report:\n{text}"
        );
    }
}
