//! Cross-crate integration: every benchmark × representative policies runs
//! to completion on the timing simulator and passes its post-conditions.

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

/// Policies covering each architecture class.
const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Baseline,
    PolicyKind::Timeout,
    PolicyKind::MonRsAll,
    PolicyKind::MonNrAll,
    PolicyKind::MonNrOne,
    PolicyKind::Awg,
];

#[test]
fn full_matrix_completes_and_validates_quick() {
    let scale = Scale::quick();
    for kind in BenchmarkKind::all() {
        for policy in POLICIES {
            let r = run_experiment(kind, policy, &scale, ExperimentConfig::NonOversubscribed);
            assert!(
                r.outcome.is_completed(),
                "{kind} under {}: {:?}",
                policy.label(),
                r.outcome
            );
            r.validated
                .unwrap_or_else(|e| panic!("{kind} under {}: {e}", policy.label()));
        }
    }
}

#[test]
fn sleep_policy_completes_non_oversubscribed() {
    let scale = Scale::quick();
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::TreeBarrier,
        BenchmarkKind::HashTable,
    ] {
        let r = run_experiment(
            kind,
            PolicyKind::Sleep,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(r.is_valid_completion(), "{kind}: {:?}", r.outcome);
    }
}

#[test]
fn min_resume_oracle_uses_fewest_atomics() {
    let scale = Scale::quick();
    for kind in [BenchmarkKind::SpinMutexGlobal, BenchmarkKind::FaMutexGlobal] {
        let oracle = run_experiment(
            kind,
            PolicyKind::MinResume,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(oracle.is_valid_completion(), "{kind}");
        for policy in [PolicyKind::Baseline, PolicyKind::MonRsAll] {
            let other = run_experiment(kind, policy, &scale, ExperimentConfig::NonOversubscribed);
            assert!(
                other.atomics() >= oracle.atomics(),
                "{kind}: {} used {} < oracle {}",
                policy.label(),
                other.atomics(),
                oracle.atomics()
            );
        }
    }
}

#[test]
fn waiting_policies_issue_fewer_atomics_than_busy_waiting() {
    let scale = Scale::quick();
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::SleepMutexGlobal,
    ] {
        let busy = run_experiment(
            kind,
            PolicyKind::Baseline,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        let awg = run_experiment(
            kind,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(
            awg.atomics() < busy.atomics(),
            "{kind}: AWG {} >= busy {}",
            awg.atomics(),
            busy.atomics()
        );
    }
}

#[test]
fn awg_ablations_still_correct() {
    use awg_core::policies::AwgPolicy;
    use awg_gpu::Gpu;

    let scale = Scale::quick();
    let ablations: Vec<(&str, Box<dyn awg_gpu::SchedPolicy>)> = vec![
        (
            "no-resume-pred",
            Box::new(AwgPolicy::new().without_resume_prediction()),
        ),
        (
            "no-stall-pred",
            Box::new(AwgPolicy::new().without_stall_prediction()),
        ),
    ];
    for (name, policy) in ablations {
        let built = BenchmarkKind::TreeBarrier.build(&scale.params, policy.style());
        let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy);
        let outcome = gpu.run();
        assert!(outcome.is_completed(), "{name}: {outcome:?}");
        built
            .validate(gpu.backing())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
