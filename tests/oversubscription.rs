//! The §VI oversubscribed scenario end to end: forward-progress guarantees
//! per policy when a CU is lost mid-kernel.

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

#[test]
fn baseline_and_sleep_deadlock_awg_survives() {
    let scale = Scale::quick();
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::TreeBarrier,
    ] {
        for policy in [PolicyKind::Baseline, PolicyKind::Sleep] {
            let r = run_experiment(kind, policy, &scale, ExperimentConfig::Oversubscribed);
            assert!(
                r.deadlocked(),
                "{kind} under {} should deadlock, got {:?}",
                policy.label(),
                r.outcome
            );
        }
        for policy in [
            PolicyKind::Timeout,
            PolicyKind::MonNrAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
        ] {
            let r = run_experiment(kind, policy, &scale, ExperimentConfig::Oversubscribed);
            assert!(
                r.is_valid_completion(),
                "{kind} under {}: {:?} / {:?}",
                policy.label(),
                r.outcome,
                r.validated
            );
        }
    }
}

#[test]
fn ifp_policies_actually_context_switch() {
    let scale = Scale::quick();
    let r = run_experiment(
        BenchmarkKind::FaMutexGlobal,
        PolicyKind::Awg,
        &scale,
        ExperimentConfig::Oversubscribed,
    );
    let s = r.outcome.summary();
    assert!(r.is_valid_completion());
    assert!(
        s.switches_out > 0 && s.switches_in > 0,
        "oversubscription must trigger swaps: {s:?}"
    );
}

#[test]
fn oversubscribed_runs_cost_more_than_steady_ones() {
    let scale = Scale::quick();
    for kind in [BenchmarkKind::FaMutexGlobal, BenchmarkKind::TreeBarrier] {
        let steady = run_experiment(
            kind,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        let lossy = run_experiment(
            kind,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::Oversubscribed,
        );
        assert!(
            lossy.cycles().unwrap() > steady.cycles().unwrap(),
            "{kind}: losing half the machine must cost time ({:?} vs {:?})",
            lossy.cycles(),
            steady.cycles()
        );
    }
}

#[test]
fn applications_survive_resource_loss_with_correct_results() {
    let scale = Scale::quick();
    for kind in [BenchmarkKind::HashTable, BenchmarkKind::BankAccount] {
        let r = run_experiment(
            kind,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::Oversubscribed,
        );
        assert!(r.outcome.is_completed(), "{kind}: {:?}", r.outcome);
        r.validated.unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn deadlock_reports_unfinished_wg_count() {
    let scale = Scale::quick();
    let r = run_experiment(
        BenchmarkKind::TreeBarrier,
        PolicyKind::Baseline,
        &scale,
        ExperimentConfig::Oversubscribed,
    );
    match r.outcome {
        awg_gpu::RunOutcome::Deadlocked { unfinished, .. } => {
            assert!(unfinished > 0 && unfinished <= scale.params.num_wgs as usize);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}
