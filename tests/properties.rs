//! Property-based tests over the core invariants.

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_isa::Machine;
use awg_sim::EventQueue;
use awg_workloads::{BenchmarkKind, WorkloadParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event queue pops in nondecreasing cycle order with FIFO
    /// tie-break, for arbitrary schedules.
    #[test]
    fn event_queue_total_order(cycles in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &c) in cycles.iter().enumerate() {
            q.schedule(c, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((c, i)) = q.pop() {
            if let Some((lc, li)) = last {
                prop_assert!(c > lc || (c == lc && i > li), "({lc},{li}) then ({c},{i})");
            }
            last = Some((c, i));
        }
    }

    /// Functional and timed execution agree on the final memory state of
    /// every benchmark (same program, same parameters, wildly different
    /// interleavings — the post-conditions pin the converged state).
    #[test]
    fn timed_and_functional_agree_on_postconditions(
        wgs in 1u64..4,        // × cluster width below
        iterations in 1u32..3,
        kind_idx in 0usize..16,
    ) {
        let kind = BenchmarkKind::all()[kind_idx];
        let params = WorkloadParams {
            num_wgs: wgs * 2,
            wgs_per_cluster: 2,
            iterations,
            cs_compute: 50,
            cs_data_words: 2,
            seed: 3,
        };
        // Functional machine (fair round-robin).
        let built = kind.build(&params, awg_gpu::SyncStyle::Busy);
        let mut m = Machine::new(built.program.clone(), params.num_wgs, params.wgs_per_cluster);
        for &(a, v) in &built.init {
            m.mem_mut().store(a, v);
        }
        m.run(50_000_000).expect("functional run terminates");
        built.validate(m.mem()).expect("functional post-conditions");

        // Timed machine under AWG.
        let policy = awg_core::policies::build_policy(PolicyKind::Awg);
        let built = kind.build(&params, policy.style());
        let mut gpu = awg_gpu::Gpu::new(
            awg_gpu::GpuConfig::isca2020_baseline(),
            built.kernel(),
            policy,
        );
        prop_assert!(gpu.run().is_completed());
        built.validate(gpu.backing()).expect("timed post-conditions");
    }

    /// Random small workloads complete and validate under every
    /// forward-progress policy, with or without a mid-run resource loss.
    #[test]
    fn ifp_policies_always_make_progress(
        kind_idx in 0usize..16,
        policy_idx in 0usize..4,
        lose_cu in any::<bool>(),
    ) {
        let kind = BenchmarkKind::all()[kind_idx];
        let policy = [
            PolicyKind::Timeout,
            PolicyKind::MonNrAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
        ][policy_idx];
        let scale = Scale::quick();
        let config = if lose_cu {
            ExperimentConfig::Oversubscribed
        } else {
            ExperimentConfig::NonOversubscribed
        };
        let r = run_experiment(kind, policy, &scale, config);
        prop_assert!(
            r.outcome.is_completed(),
            "{kind} under {} ({config:?}): {:?}",
            policy.label(),
            r.outcome
        );
        prop_assert!(r.validated.is_ok(), "{kind}: {:?}", r.validated);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The counting Bloom filter never reports an inserted value as absent
    /// (no false negatives) and its unique count never exceeds the number
    /// of distinct insertions.
    #[test]
    fn bloom_no_false_negatives(values in prop::collection::vec(-1000i64..1000, 1..64)) {
        let mut bloom = awg_core::CountingBloom::new();
        for &v in &values {
            bloom.insert(v);
        }
        for &v in &values {
            prop_assert!(bloom.contains(v));
        }
        let mut distinct = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(bloom.unique_count() as usize <= distinct.len());
    }

    /// SyncMon register/take round-trips preserve FIFO order and never leak
    /// waiter slots.
    #[test]
    fn syncmon_fifo_and_no_leaks(wgs in prop::collection::vec(0u32..64, 1..40)) {
        use awg_core::{SyncMon, SyncMonConfig};
        use awg_gpu::SyncCond;
        let mut mon = SyncMon::new(SyncMonConfig::isca2020());
        let cond = SyncCond { addr: 192, expected: 5 };
        let mut expected_order = Vec::new();
        for (i, &wg) in wgs.iter().enumerate() {
            // Make ids unique so FIFO order is well-defined.
            let unique = wg + (i as u32) * 64;
            if mon.register(cond, unique, 0) == awg_core::RegisterOutcome::Registered {
                expected_order.push(unique);
            }
        }
        let taken = mon.take_waiters(&cond, usize::MAX);
        prop_assert_eq!(taken, expected_order);
        let (conds, waiters) = mon.occupancy();
        prop_assert_eq!((conds, waiters), (0, 0));
    }

    /// Universal-hash condition keys stay in range for arbitrary addresses
    /// and values.
    #[test]
    fn condition_hash_in_range(addr in 0u64..u64::MAX / 2, value in any::<i64>()) {
        let h = awg_core::hash::UniversalHash::nth(11);
        let key = awg_core::hash::condition_key(addr & !7, value, 1024, 64);
        prop_assert!(h.hash(key, 256) < 256);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated fault plans are well-formed for arbitrary seeds and
    /// machine sizes: sorted timeline, every replug preceded by an unplug
    /// of the same CU, positive windows, in-range CUs — and the whole
    /// timeline survives a JSON round trip.
    #[test]
    fn fault_plans_are_well_formed(seed in any::<u64>(), num_cus in 1usize..9) {
        use awg_gpu::{FaultKind, FaultPlan, FaultPlanConfig, WakeChaosMode};
        let cfg = FaultPlanConfig::standard(num_cus);
        let plan = FaultPlan::generate(seed, &cfg);

        prop_assert!(
            plan.events.windows(2).all(|w| w[0].at <= w[1].at),
            "timeline must be sorted"
        );
        let mut down: Vec<usize> = Vec::new();
        for e in &plan.events {
            // Losses land inside the injection window; a restore may trail
            // its loss by up to the longest outage.
            prop_assert!(
                (cfg.start..=cfg.horizon + cfg.flap_max).contains(&e.at),
                "{e:?} outside window"
            );
            match e.kind {
                FaultKind::CuLoss { cu } => {
                    prop_assert!(cu < num_cus, "CU {cu} out of range");
                    down.push(cu);
                }
                FaultKind::CuRestore { cu } => {
                    let pos = down.iter().position(|&c| c == cu);
                    prop_assert!(pos.is_some(), "restore of CU {cu} without a prior loss");
                    down.remove(pos.unwrap());
                }
                FaultKind::WakeChaos { mode, window } => {
                    prop_assert!(window > 0, "empty wake window");
                    if let WakeChaosMode::Delay(extra) = mode {
                        prop_assert!(extra > 0, "zero-cycle delay");
                    }
                }
                FaultKind::CtxStall { extra, window } => {
                    prop_assert!(extra > 0 && window > 0, "degenerate ctx stall");
                }
                FaultKind::Policy(_) => {}
            }
        }
        prop_assert!(down.is_empty(), "CUs still unplugged at the horizon: {down:?}");

        let back = FaultPlan::from_json(&plan.to_json());
        prop_assert_eq!(back.as_ref(), Ok(&plan), "JSON round trip");
    }

    /// Plan generation is a pure function of the seed, and resident-safe
    /// plans never touch a CU while keeping the other fault classes.
    #[test]
    fn fault_plans_are_seed_deterministic_and_resident_safe(
        seed in any::<u64>(),
        num_cus in 1usize..9,
    ) {
        use awg_gpu::{FaultPlan, FaultPlanConfig};
        let cfg = FaultPlanConfig::standard(num_cus);
        prop_assert_eq!(
            FaultPlan::generate(seed, &cfg),
            FaultPlan::generate(seed, &cfg),
            "same seed, same plan"
        );

        let safe = FaultPlan::generate(seed, &cfg.resident_safe());
        prop_assert!(safe.max_cu().is_none(), "resident-safe plan unplugged a CU");
        prop_assert!(!safe.events.is_empty(), "other fault classes must remain");
    }
}

/// Strategy pieces for random-program generation.
#[derive(Debug, Clone)]
enum FuzzInst {
    Li(u8, i64),
    Alu(u8, u8, u8, i64),
    Compute(u32),
    Sleep(u32),
    Barrier,
    Ld(u8, u64),
    St(u64, i64),
    Atom(u8, u64, i64, Option<i64>),
    Wait(u64, i64),
    Br(u8, i64, usize),
    Jmp(usize),
}

fn fuzz_inst() -> impl Strategy<Value = FuzzInst> {
    let reg = 0u8..24;
    let addr = (1u64..512).prop_map(|a| a * 8);
    prop_oneof![
        (reg.clone(), any::<i64>()).prop_map(|(r, v)| FuzzInst::Li(r, v)),
        (0u8..14, reg.clone(), reg.clone(), -100i64..100)
            .prop_map(|(op, d, s, v)| FuzzInst::Alu(op, d, s, v)),
        (1u32..1000).prop_map(FuzzInst::Compute),
        (1u32..1000).prop_map(FuzzInst::Sleep),
        Just(FuzzInst::Barrier),
        (reg.clone(), addr.clone()).prop_map(|(r, a)| FuzzInst::Ld(r, a)),
        (addr.clone(), -50i64..50).prop_map(|(a, v)| FuzzInst::St(a, v)),
        (0u8..11, addr.clone(), -5i64..5, prop::option::of(-5i64..5))
            .prop_map(|(op, a, v, e)| FuzzInst::Atom(op, a, v, e)),
        (addr, -5i64..5).prop_map(|(a, e)| FuzzInst::Wait(a, e)),
        (0u8..6, -10i64..10, 0usize..64).prop_map(|(c, v, t)| FuzzInst::Br(c, v, t)),
        (0usize..64).prop_map(FuzzInst::Jmp),
    ]
}

fn build_fuzz_program(insts: &[FuzzInst]) -> awg_isa::Program {
    use awg_isa::{AluOp, Cond, ProgramBuilder, Reg};
    use awg_mem::AtomicOp;
    let alu_ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Slt,
        AluOp::Seq,
        AluOp::Min,
        AluOp::Max,
    ];
    let conds = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
    let atoms = [
        AtomicOp::Load,
        AtomicOp::Store,
        AtomicOp::Exch,
        AtomicOp::Add,
        AtomicOp::Sub,
        AtomicOp::And,
        AtomicOp::Or,
        AtomicOp::Xor,
        AtomicOp::Max,
        AtomicOp::Min,
        AtomicOp::Cas,
    ];
    let mut b = ProgramBuilder::new("fuzz");
    // One label bound before every instruction (plus the final halt), so any
    // branch target in range is valid.
    let labels: Vec<_> = (0..=insts.len()).map(|_| b.new_label()).collect();
    for (i, inst) in insts.iter().enumerate() {
        b.bind(labels[i]);
        match inst {
            FuzzInst::Li(r, v) => {
                b.li(Reg::new(*r), *v);
            }
            FuzzInst::Alu(op, d, s, v) => {
                b.alu(alu_ops[*op as usize], Reg::new(*d), Reg::new(*s), *v);
            }
            FuzzInst::Compute(c) => {
                b.compute(*c);
            }
            FuzzInst::Sleep(n) => {
                b.sleep(*n as i64);
            }
            FuzzInst::Barrier => {
                b.barrier();
            }
            FuzzInst::Ld(r, a) => {
                b.ld(Reg::new(*r), *a);
            }
            FuzzInst::St(a, v) => {
                b.st(*a, *v);
            }
            FuzzInst::Atom(op, a, v, e) => {
                let op = atoms[*op as usize];
                match (op, e) {
                    // CAS always needs an expectation; plain ops may not.
                    (AtomicOp::Cas, _) => {
                        b.atom_cas(Reg::R0, *a, *v, e.unwrap_or(0));
                    }
                    (_, Some(e)) => {
                        b.atom_wait(op, Reg::R0, *a, *v, *e);
                    }
                    (_, None) => {
                        b.atom(op, Reg::R0, *a, *v);
                    }
                }
            }
            FuzzInst::Wait(a, e) => {
                b.wait(*a, *e);
            }
            FuzzInst::Br(c, v, t) => {
                b.br(
                    conds[*c as usize],
                    Reg::R1,
                    *v,
                    labels[*t % (insts.len() + 1)],
                );
            }
            FuzzInst::Jmp(t) => {
                b.jmp(labels[*t % (insts.len() + 1)]);
            }
        }
    }
    b.bind(labels[insts.len()]);
    b.halt();
    b.build().expect("fuzz programs are valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any valid program survives a disassemble → assemble round trip with
    /// identical control flow and text-stable second trip.
    #[test]
    fn assembler_roundtrips_arbitrary_programs(
        insts in prop::collection::vec(fuzz_inst(), 0..40)
    ) {
        let program = build_fuzz_program(&insts);
        let asm = program.disassemble();
        let re = awg_isa::assemble(&asm, program.name())
            .unwrap_or_else(|e| panic!("{e}\n{asm}"));
        prop_assert_eq!(program.len(), re.len());
        // Targets must resolve identically.
        for (pc, (a, b)) in program.insts().iter().zip(re.insts()).enumerate() {
            use awg_isa::Inst;
            match (a, b) {
                (Inst::Jmp(x), Inst::Jmp(y)) => {
                    prop_assert_eq!(program.target(*x), re.target(*y), "pc {}", pc)
                }
                (Inst::Br(c1, r1, o1, x), Inst::Br(c2, r2, o2, y)) => {
                    prop_assert_eq!((c1, r1, o1), (c2, r2, o2));
                    prop_assert_eq!(program.target(*x), re.target(*y), "pc {}", pc);
                }
                (a, b) => prop_assert_eq!(a, b, "pc {}", pc),
            }
        }
        let again = awg_isa::assemble(&re.disassemble(), re.name()).unwrap();
        prop_assert_eq!(re.disassemble(), again.disassemble());
    }
}
