//! Every benchmark program in every sync style must survive a
//! disassemble → assemble → disassemble round trip unchanged — the
//! assembler and disassembler are exact inverses over the whole suite.

use awg_gpu::SyncStyle;
use awg_isa::{assemble, Inst, Program};
use awg_workloads::{BenchmarkKind, WorkloadParams};

/// Canonical form: instruction text with branch targets resolved to PCs
/// (label *ids* are builder bookkeeping and legitimately differ between a
/// program and its reassembly; the control-flow graph must not).
fn canonical(program: &Program) -> Vec<String> {
    program
        .insts()
        .iter()
        .map(|inst| match inst {
            Inst::Jmp(l) => format!("jmp -> {}", program.target(*l)),
            Inst::Br(c, r, o, l) => {
                format!("br {c:?} {r} {o:?} -> {}", program.target(*l))
            }
            other => format!("{other}"),
        })
        .collect()
}

#[test]
fn all_workload_programs_roundtrip() {
    let params = WorkloadParams::smoke();
    for kind in BenchmarkKind::all() {
        for style in [
            SyncStyle::Busy,
            SyncStyle::WaitInst,
            SyncStyle::WaitingAtomic,
        ] {
            let built = kind.build(&params, style);
            let asm = built.program.disassemble();
            let reassembled = assemble(&asm, built.program.name())
                .unwrap_or_else(|e| panic!("{kind} {style:?}: {e}\n{asm}"));
            assert_eq!(
                canonical(&built.program),
                canonical(&reassembled),
                "{kind} {style:?} control flow diverged"
            );
            // A second trip is exactly stable.
            let twice = assemble(&reassembled.disassemble(), reassembled.name()).unwrap();
            assert_eq!(
                reassembled.disassemble(),
                twice.disassemble(),
                "{kind} {style:?} not idempotent"
            );
        }
    }
}

#[test]
fn reassembled_program_behaves_identically() {
    // Run the original and the round-tripped SPM program on the functional
    // machine: the final memories must match word for word.
    let params = WorkloadParams::smoke();
    let built = BenchmarkKind::SpinMutexGlobal.build(&params, SyncStyle::Busy);
    let asm = built.program.disassemble();
    let reassembled = assemble(&asm, "rt").unwrap();

    let run = |program: awg_isa::Program| {
        let mut m = awg_isa::Machine::new(program, params.num_wgs, params.wgs_per_cluster);
        for &(a, v) in &built.init {
            m.mem_mut().store(a, v);
        }
        m.run(10_000_000).unwrap();
        let mut words: Vec<(u64, i64)> = m.mem().nonzero_words().collect();
        words.sort_unstable();
        words
    };
    assert_eq!(run(built.program.clone()), run(reassembled));
}
