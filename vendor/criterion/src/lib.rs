//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the criterion API its bench
//! targets use: [`Criterion::bench_function`] with a [`Bencher::iter`]
//! body, plus the builder calls the shared `bench_main_with_report!`
//! macro issues. Measurements are plain wall-clock samples printed to
//! stdout — enough to track figure-regeneration cost over time, with
//! zero dependencies.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Benchmark driver. Mirrors `criterion::Criterion`'s builder calls.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` with a [`Bencher`] and prints the mean wall-clock time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: f64 = b.samples.iter().sum();
        println!(
            "bench {name:<45} {:>12.1} us/iter ({n} samples)",
            total / n as f64
        );
        self
    }

    /// No-op; per-benchmark lines were already printed.
    pub fn final_summary(&mut self) {}
}

/// Passed to each benchmark body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    samples: Vec<f64>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` once per sample, keeping its return value alive via
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_iterations() {
        let mut c = Criterion::default().sample_size(7).configure_from_args();
        let mut runs = 0;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 7);
        c.final_summary();
    }

    #[test]
    fn sample_size_never_zero() {
        let mut c = Criterion::default().sample_size(0);
        let mut runs = 0;
        c.bench_function("clamped", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
