//! Offline deterministic stand-in for the `proptest` framework.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API its property tests
//! use: the [`proptest!`] macro, integer-range / tuple / collection /
//! `prop_oneof!` strategies, `prop_map`, and `any::<T>()`.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure file: every case is generated from a seed derived purely
//! from the test name and case index, so a failing case reproduces
//! bit-identically on every rerun (the seed is printed on failure).

#![forbid(unsafe_code)]

/// Deterministic splitmix64 generator used for all value generation.
pub mod rng {
    /// A tiny deterministic PRNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose whole stream is fixed by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n` (`n` must be nonzero).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Strategies: how arbitrary values of a type are generated.
pub mod strategy {
    use std::fmt;
    use std::ops::Range;

    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: fmt::Debug;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()`: the canonical whole-domain strategy for a type.
pub mod arbitrary {
    use std::fmt;
    use std::marker::PhantomData;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain generator.
    pub trait Arbitrary: fmt::Debug {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3-in-4 Some, matching upstream's Some-biased default.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` or a value of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Case-driving configuration and runner.
pub mod test_runner {
    use crate::rng::TestRng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    fn fnv64(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `f` once per case with a per-case deterministic generator,
    /// reporting the reproducing seed if the case panics.
    pub fn run_cases<F: Fn(&mut TestRng)>(cfg: &Config, name: &str, f: F) {
        for case in 0..cfg.cases {
            let seed = fnv64(name) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = TestRng::from_seed(seed);
                f(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "[proptest] {name}: case {case}/{} failed \
                     (seed 0x{seed:016x}; generation is deterministic, rerun reproduces)",
                    cfg.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Defines deterministic property tests over generated inputs.
///
/// Supported grammar (the upstream subset this workspace uses):
/// an optional `#![proptest_config(expr)]` header, then test functions
/// whose parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                });
            }
        )*
    };
}

/// `assert!` under a name the upstream API exposes inside properties.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the upstream API exposes inside properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let strat = prop::collection::vec((0u32..100, any::<bool>()), 1..50);
        let a = Strategy::generate(&strat, &mut TestRng::from_seed(42));
        let b = Strategy::generate(&strat, &mut TestRng::from_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies, and prop_asserts.
        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }
    }
}
